package dyninst

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vm"
	"repro/internal/workload"
)

func build(t *testing.T, srcs ...string) *cfg.Program {
	t.Helper()
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const loadsSrc = `
.module a.out
.executable
.entry main
.func main
  mov  r5, @buf
  load r4, [r5]
  mov  r2, 0
  mov  r3, 10
head:
  load r4, [r5+8]
  add  r2, r2, 1
  blt  r2, r3, head
  halt
.data
buf: .quad 1, 2
`

func TestStaticInstrumentation(t *testing.T) {
	prog := build(t, loadsSrc)
	be, err := OpenBinary(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var loads uint64
	for _, f := range be.Image().Functions() {
		for _, bb := range f.Blocks() {
			for n, in := range bb.Instructions() {
				if in.Op == isa.Load {
					snippet := FuncCallExpr{Fn: func([]uint64) { loads++ }, Cost: 10}
					if err := be.InsertSnippet(snippet, bb.InstPoints()[n], CallBefore); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	var initRan, finiRan bool
	be.OnInit(func() { initRan = true })
	be.OnFini(func() { finiRan = true })
	res, err := be.Run()
	if err != nil {
		t.Fatal(err)
	}
	if loads != 11 {
		t.Errorf("load count = %d, want 11", loads)
	}
	if !initRan || !finiRan {
		t.Error("init/fini did not run")
	}
	if res.Insts == 0 {
		t.Error("no instructions")
	}
}

func TestFindFunctionAndPoints(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern print
.func main
  call helper
  call helper
  halt
.func helper
  mov r7, 2
  beq r7, r8, alt
  ret
alt:
  ret
`
	prog := build(t, src)
	be, err := OpenBinary(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	img := be.Image()
	helper, err := img.FindFunction("helper")
	if err != nil {
		t.Fatal(err)
	}
	if helper.Name() != "helper" || helper.Address() != helper.Func().Entry {
		t.Error("function metadata wrong")
	}
	if _, err := img.FindFunction("nope"); err == nil {
		t.Error("FindFunction(nope) succeeded")
	}
	entry, err := helper.FindPoint(Entry)
	if err != nil || len(entry) != 1 {
		t.Fatalf("entry points = %v, %v", entry, err)
	}
	exits, err := helper.FindPoint(Exit)
	if err != nil || len(exits) != 2 {
		t.Fatalf("exit points = %d, want 2", len(exits))
	}
	main, _ := img.FindFunction("main")
	calls, err := main.FindPoint(Subroutine)
	if err != nil || len(calls) != 2 {
		t.Fatalf("call points = %d, want 2", len(calls))
	}
	if _, err := helper.FindPoint(ProcedureLocation(42)); err == nil {
		t.Error("bogus location succeeded")
	}

	var entries, rets, callsSeen int
	for _, p := range entry {
		if err := be.InsertSnippet(FuncCallExpr{Fn: func([]uint64) { entries++ }}, p, CallBefore); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range exits {
		if err := be.InsertSnippet(FuncCallExpr{Fn: func([]uint64) { rets++ }}, p, CallBefore); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range calls {
		if err := be.InsertSnippet(FuncCallExpr{Fn: func([]uint64) { callsSeen++ }}, p, CallBefore); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	if entries != 2 || rets != 2 || callsSeen != 2 {
		t.Errorf("entries=%d rets=%d calls=%d, want 2 each", entries, rets, callsSeen)
	}
}

func TestLoopPoints(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.func main
  mov r8, 0
  mov r9, 5
head:
  add r8, r8, 1
  blt r8, r9, head
  halt
`
	prog := build(t, src)
	be, err := OpenBinary(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	main, _ := be.Image().FindFunction("main")
	loops := main.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	l := loops[0]
	var entries, iters, exits int
	for _, p := range l.EntryPoints() {
		if err := be.InsertSnippet(FuncCallExpr{Fn: func([]uint64) { entries++ }}, p, CallBefore); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range l.IterPoints() {
		if err := be.InsertSnippet(FuncCallExpr{Fn: func([]uint64) { iters++ }}, p, CallBefore); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range l.ExitPoints() {
		if err := be.InsertSnippet(FuncCallExpr{Fn: func([]uint64) { exits++ }}, p, CallBefore); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	if entries != 1 || iters != 4 || exits != 1 {
		t.Errorf("entries=%d iters=%d exits=%d, want 1, 4, 1", entries, iters, exits)
	}
}

func TestSnippetExpressions(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern malloc
.func main
  mov   r1, 24
  call  malloc
  mov   r5, r0
  store r5, [r5+8]
  halt
`
	prog := build(t, src)
	be, err := OpenBinary(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	main, _ := be.Image().FindFunction("main")
	var callInstPt, storePt *Point
	var callAddr uint64
	for _, bb := range main.Blocks() {
		for n, in := range bb.Instructions() {
			switch in.Op {
			case isa.Call:
				callInstPt = bb.InstPoints()[n]
				callAddr = in.Addr
			case isa.Store:
				storePt = bb.InstPoints()[n]
			}
		}
	}
	var got []uint64
	err = be.InsertSnippet(FuncCallExpr{
		Fn:   func(args []uint64) { got = append([]uint64(nil), args...) },
		Args: []Snippet{RetExpr{}, ParamExpr{N: 1}, ConstExpr{Val: 5}, InstAddrExpr{}, RegExpr{Reg: isa.R1}},
	}, callInstPt, CallAfter)
	if err != nil {
		t.Fatal(err)
	}
	var ea, tgt uint64
	err = be.InsertSnippet(SequenceExpr{Items: []Snippet{
		FuncCallExpr{Fn: func(args []uint64) { ea = args[0] }, Args: []Snippet{EffectiveAddressExpr{}}},
		FuncCallExpr{Fn: func(args []uint64) { tgt = args[0] }, Args: []Snippet{BranchTargetExpr{}}},
	}}, storePt, CallBefore)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("args = %v", got)
	}
	if got[0] != obj.HeapBase {
		t.Errorf("RetExpr = %#x, want heap base", got[0])
	}
	if got[1] != 24 || got[4] != 24 {
		t.Errorf("ParamExpr/RegExpr = %d/%d, want 24", got[1], got[4])
	}
	if got[2] != 5 || got[3] != callAddr {
		t.Errorf("ConstExpr/InstAddrExpr = %d/%#x", got[2], got[3])
	}
	if ea != obj.HeapBase+8 {
		t.Errorf("EffectiveAddressExpr = %#x, want %#x", ea, obj.HeapBase+8)
	}
	if tgt != 0 {
		t.Errorf("BranchTargetExpr on store = %#x, want 0", tgt)
	}
}

func TestRefusesImpreciseControlFlow(t *testing.T) {
	s, ok := workload.ByName("perlbench") // unrecoverable jump tables
	if !ok {
		t.Fatal("perlbench missing")
	}
	mods, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBinary(prog, Config{}); err == nil {
		t.Fatal("OpenBinary accepted unrecoverable control flow")
	} else if !strings.Contains(err.Error(), "control-flow recovery failed") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestAcceptsRecoverableJumpTables(t *testing.T) {
	s, _ := workload.ByName("deepsjeng") // recoverable jump tables
	mods, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBinary(prog, Config{}); err != nil {
		t.Fatalf("OpenBinary rejected recoverable control flow: %v", err)
	}
}

func TestInsertSnippetErrors(t *testing.T) {
	prog := build(t, loadsSrc)
	be, err := OpenBinary(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := be.InsertSnippet(ConstExpr{}, nil, CallBefore); err == nil {
		t.Error("nil point accepted")
	}
	main, _ := be.Image().FindFunction("main")
	entry, _ := main.FindPoint(Entry)
	if err := be.InsertSnippet(ConstExpr{}, entry[0], CallAfter); err == nil {
		t.Error("callAfter at block point accepted")
	}
	if _, err := be.Image().InstPoint(3); err == nil {
		t.Error("InstPoint(3) accepted")
	}
	pt, err := be.Image().InstPoint(main.Address())
	if err != nil || pt == nil {
		t.Errorf("InstPoint(entry) failed: %v", err)
	}
}
