// Package native contains the five case-study tools hand-written
// directly against each instrumentation framework's API — the baselines
// of the paper's Table I (code length) and Figure 13 (overhead of
// Cinnamon-generated tools versus native ones).
//
// Each implementation lives in its own file, named
// <framework>_<usecase>.go, so the Table I experiment can count its
// source lines. The tools follow each framework's idiom:
//
//   - Pin tools register instrumentation callbacks and insert analysis
//     calls with IARG descriptors; short, branch-free analysis routines
//     are marked inlinable (Pin inlines them automatically);
//   - Janus tools split into a static pass emitting rewrite rules and
//     dynamic handlers consuming them;
//   - Dyninst tools open the binary for editing and build snippet ASTs.
//
// Cost convention (see DESIGN.md): an analysis body is priced at
// sem.StmtCost per Cinnamon-equivalent statement, exactly like the
// interpreted actions, so measured overhead isolates the dispatch
// mechanism rather than body accounting differences.
package native

import (
	"embed"
	"fmt"
	"io"
	"sort"

	"repro/internal/cfg"
	"repro/internal/core/sem"
	"repro/internal/vm"
)

//go:embed *.go
var sources embed.FS

// stmtCost is the per-statement body price, mirroring the Cinnamon
// interpreter's cost model.
const stmtCost = sem.StmtCost

// UseCases lists the case-study names in Table I order.
func UseCases() []string {
	return []string{"instcount", "instcount_bb", "loopcoverage", "useafterfree", "shadowstack", "forwardcfi"}
}

// RunFn executes a native tool on a loaded program.
type RunFn func(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error)

var registry = map[string]RunFn{}

func register(framework, usecase string, fn RunFn) {
	registry[framework+"/"+usecase] = fn
}

// Supported reports whether the use case is implementable on the
// framework (loop coverage is not, on Pin).
func Supported(framework, usecase string) bool {
	_, ok := registry[framework+"/"+usecase]
	return ok
}

// Run executes the named native tool.
func Run(framework, usecase string, prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	fn, ok := registry[framework+"/"+usecase]
	if !ok {
		return nil, fmt.Errorf("native: no %s implementation of %s", framework, usecase)
	}
	if out == nil {
		out = io.Discard
	}
	return fn(prog, out, fuel)
}

// Source returns the Go source of the named native tool (for line
// counting).
func Source(framework, usecase string) (string, error) {
	b, err := sources.ReadFile(framework + "_" + usecase + ".go")
	if err != nil {
		return "", fmt.Errorf("native: no source for %s/%s", framework, usecase)
	}
	return string(b), nil
}

// Implementations lists all registered framework/usecase pairs, sorted.
func Implementations() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
