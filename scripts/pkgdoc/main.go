// Command pkgdoc is the documentation gate run by scripts/ci.sh: it
// walks every Go package in the repository and fails if any package
// lacks a package-level doc comment (or if a required documentation
// file is missing). Usage:
//
//	go run ./scripts/pkgdoc [repo root]
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var failures []string

	// Every package must carry a doc comment on its package clause.
	undocumented, err := packagesWithoutDoc(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkgdoc: %v\n", err)
		os.Exit(1)
	}
	for _, dir := range undocumented {
		failures = append(failures, fmt.Sprintf("package in %s has no package doc comment", dir))
	}

	// The documentation suite must exist and be non-trivial.
	for _, doc := range []string{
		"README.md",
		"docs/LANGUAGE.md",
		"docs/BACKENDS.md",
		"docs/OBSERVABILITY.md",
		"docs/ADAPTIVE.md",
		"docs/FLEET.md",
		"docs/CLI.md",
		"docs/TESTING.md",
	} {
		info, err := os.Stat(filepath.Join(root, doc))
		if err != nil || info.Size() < 512 {
			failures = append(failures, fmt.Sprintf("%s missing or stub (<512 bytes)", doc))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "pkgdoc:", f)
		}
		os.Exit(1)
	}
	fmt.Println("pkgdoc: all packages documented, docs suite present")
}

// packagesWithoutDoc returns the directories (relative to root) whose
// Go package has no doc comment on any file's package clause.
func packagesWithoutDoc(root string) ([]string, error) {
	// dir → true once a doc comment is seen, false if only undocumented
	// files were seen so far.
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		dir, _ := filepath.Rel(root, filepath.Dir(path))
		seen[dir] = seen[dir] || f.Doc != nil
		return nil
	})
	if err != nil {
		return nil, err
	}
	var missing []string
	for dir, documented := range seen {
		if !documented {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}
