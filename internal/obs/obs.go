// Package obs is the runtime observability layer: an always-compiled,
// zero-cost-when-disabled subsystem that attributes instrumentation cost
// to the probes that incur it — and, since the live-monitoring work,
// exposes that attribution to concurrent observers while the
// instrumented program is still running.
//
// The paper's evaluation (Figure 13) hinges on understanding *where*
// instrumentation overhead goes — clean calls versus inlined calls versus
// snippets, dispatch versus translation. A Collector makes that breakdown
// observable for any run: per-probe firing counters and cycle
// attribution, per-backend instrumentation-time statistics (rules
// emitted, snippets baked in, clean calls inserted, blocks translated),
// and a bounded ring-buffer trace of probe firings.
//
// The design mirrors the VM's de-mapped probe dispatch: counters live in
// pre-sized slots indexed by the ProbeID's slot index, so the hot path
// (Collector.Fire) is two uncontended atomic adds — no map lookups, no
// allocation, no locks. Registration (RegisterProbe) happens on cold
// paths only: ahead of execution for the static frameworks, at
// block-translation time for the dynamic ones. When no Collector is
// attached the only cost to the execution substrate is one predictable
// nil-check branch per probe dispatch batch.
//
// # Concurrency model
//
// A Collector has exactly one writer and any number of readers:
//
//   - The run goroutine calls RegisterProbe, Fire, MutateBuild and
//     NoteTranslation. These must not be called concurrently with each
//     other.
//   - Any goroutine may call Snapshot, Subscribe, Unsubscribe,
//     NumProbes, SubscriberDrops and Subscribers at any time, including
//     while the run is executing. This is what makes live monitoring
//     (internal/monitor) possible: a /metrics scrape is a Snapshot taken
//     mid-run.
//
// Counters are read and written with atomic operations, so a mid-run
// Snapshot is race-free and every counter in it is monotonically
// non-decreasing across consecutive snapshots. Fire updates a probe's
// fire and cycle counters with two separate atomic adds, so a snapshot
// taken between them can observe the fire without its cycles; the skew
// is bounded by one firing per probe and vanishes once the run is over —
// the final snapshot reconciles exactly.
//
// # Cross-collector attribution
//
// ProbeIDs carry a per-collector generation tag (see ProbeID), so an ID
// minted by one collector and fired on another — possible when parallel
// harnesses juggle one collector per run cell — lands in the untracked
// bucket instead of silently incrementing an unrelated probe's slot.
package obs

import (
	"sync"
	"sync/atomic"
)

// ProbeID identifies a registered probe. An ID packs two fields:
//
//   - bits 0..23: the probe's 1-based slot index within its collector
//     (0 marks an untagged probe);
//   - bits 24..30: the minting collector's generation tag.
//
// The generation tag makes IDs collector-specific: Fire checks it and
// routes firings carrying a foreign or untagged ID to the untracked
// bucket, so a probe registered on one collector can never misattribute
// onto another collector's slots (parallel harnesses run one collector
// per cell, and the dense indexes would otherwise collide). Reports and
// trace events expose the plain slot index (Index), not the tagged wire
// value.
type ProbeID int32

// NoProbe is the zero ProbeID: the probe is not individually tracked.
const NoProbe ProbeID = 0

// ProbeID field layout (see the type comment).
const (
	probeIndexBits = 24
	probeIndexMask = 1<<probeIndexBits - 1
	probeGenMask   = 0x7f
	// MaxProbes is the per-collector registration capacity imposed by
	// the 24-bit slot index.
	MaxProbes = probeIndexMask
)

// Index returns the probe's 1-based slot index within its collector
// (0 for NoProbe). Stats.Probes[Index-1] is the probe's report row.
func (id ProbeID) Index() int { return int(uint32(id) & probeIndexMask) }

// gen returns the ID's collector generation tag.
func (id ProbeID) gen() uint32 { return uint32(id) >> probeIndexBits & probeGenMask }

// collectorGen mints generation tags; the 7-bit tag wraps, skipping 0
// (0 is reserved for untagged IDs and zero-value collectors).
var collectorGen atomic.Uint32

func nextGen() uint32 {
	for {
		if g := collectorGen.Add(1) & probeGenMask; g != 0 {
			return g
		}
	}
}

// Trigger names for ProbeMeta.Trigger (shared vocabulary across the
// three frameworks so reports and tests can filter uniformly).
const (
	TriggerBefore     = "before"
	TriggerAfter      = "after"
	TriggerBlockEntry = "block-entry"
	TriggerEdge       = "edge"
)

// Mechanism names for ProbeMeta.Mechanism.
const (
	MechCleanCall   = "clean-call"   // Pin analysis call / Janus non-inlined handler
	MechInlinedCall = "inlined-call" // Pin/DynamoRIO inlined dispatch
	MechSnippet     = "snippet"      // Dyninst trampoline + snippet
)

// ProbeMeta describes one placed probe for attribution reports.
type ProbeMeta struct {
	// Label identifies the tool-level origin of the probe (for Cinnamon
	// tools: trigger, target element type and source position of the
	// action, e.g. "before inst @7:3").
	Label string `json:"label"`
	// Trigger is the trigger point ("before", "after", "block-entry",
	// "edge").
	Trigger string `json:"trigger"`
	// Mechanism is how the framework dispatches the probe ("clean-call",
	// "inlined-call", "snippet").
	Mechanism string `json:"mechanism"`
	// Addr is the instrumented address (the destination block start for
	// edge probes).
	Addr uint64 `json:"addr"`
	// DispatchCost is the priced cost (cycle units) of one firing:
	// mechanism dispatch plus argument materialization plus the action
	// body estimate.
	DispatchCost uint64 `json:"dispatch_cost"`
}

// probeSlot is the hot-path counter pair of one probe. The fields are
// atomics so a live scrape can load them while the run goroutine adds;
// slots are addressed by pointer and never copied.
type probeSlot struct {
	fires  atomic.Uint64
	cycles atomic.Uint64
	// skips counts sampled-probe hits the sampling gate swallowed; their
	// gate cost lands in cycles so attribution still reconciles exactly.
	skips atomic.Uint64
}

// BuildStats are instrumentation-time statistics: what each layer did to
// set the run up, before and while code was translated. All fields are
// cold-path counters, mutated through Collector.MutateBuild.
type BuildStats struct {
	// ActionsPlaced counts compiled actions the engine handed to the
	// backend placer.
	ActionsPlaced int `json:"actions_placed"`
	// StaticFiltered counts placements skipped because a static `where`
	// constraint evaluated false at instrumentation time.
	StaticFiltered int `json:"static_filtered"`
	// RulesEmitted counts Janus rewrite rules produced by the static
	// analyzer (0 on other backends).
	RulesEmitted int `json:"rules_emitted,omitempty"`
	// CleanCalls and InlinedCalls count dynamic-framework call
	// insertions by dispatch mechanism (Pin analysis calls, Janus
	// handlers).
	CleanCalls   int `json:"clean_calls,omitempty"`
	InlinedCalls int `json:"inlined_calls,omitempty"`
	// Snippets counts Dyninst snippet insertions — trampolines baked
	// into the rewritten binary ahead of execution.
	Snippets int `json:"snippets,omitempty"`
	// BlocksTranslated counts just-in-time block translations, and
	// TranslationCycles the cycle units they were charged (Pin traces,
	// Janus/DynamoRIO block builds; 0 for the static rewriter).
	BlocksTranslated  int    `json:"blocks_translated,omitempty"`
	TranslationCycles uint64 `json:"translation_cycles,omitempty"`
	// WheresHoisted, CountersPromoted and ProbesCoalesced count the
	// effects of the placement-IR optimization passes (see
	// internal/core/placement): statically-decided where clauses
	// evaluated at instrumentation time, rules promoted to the pure
	// counter mechanism, and probes eliminated by same-site merging.
	// All zero with -ir-opt=false; the attribution rows themselves
	// are invariant under the passes.
	WheresHoisted    int `json:"wheres_hoisted,omitempty"`
	CountersPromoted int `json:"counters_promoted,omitempty"`
	ProbesCoalesced  int `json:"probes_coalesced,omitempty"`
	// ArtifactHits and ArtifactMisses count this session's lookups in
	// the shared artifact cache (compiled tool, built victim, rule
	// template; see internal/core/artifacts). ArtifactEvictions counts
	// cache entries this session's inserts displaced. All zero when the
	// cache is disabled or the run never consulted it.
	ArtifactHits      int `json:"artifact_hits,omitempty"`
	ArtifactMisses    int `json:"artifact_misses,omitempty"`
	ArtifactEvictions int `json:"artifact_evictions,omitempty"`
}

// Options parameterizes a Collector.
type Options struct {
	// TraceCap bounds the firing-event trace ring buffer; 0 disables
	// tracing entirely (firings are still counted, and Subscribe taps
	// still receive events).
	TraceCap int
}

// Collector accumulates observability data for one instrumented run.
// The zero Collector is usable; a nil *Collector everywhere means
// "observability disabled". See the package comment for the concurrency
// model (one writer, concurrent readers).
type Collector struct {
	// mu guards metas/slots slice headers, build, and the subscriber
	// list. Fire never takes it.
	mu    sync.Mutex
	gen   uint32
	metas []ProbeMeta // index = ProbeID.Index()-1
	slots []probeSlot // parallel to metas

	untrackedFires  atomic.Uint64
	untrackedCycles atomic.Uint64
	untrackedSkips  atomic.Uint64

	build BuildStats
	trace *ring

	// subs is the copy-on-write subscriber list (nil when nobody is
	// listening, so the hot path pays one pointer load).
	subs atomic.Pointer[[]*Subscription]
	// retiredDrops accumulates the drop counts of unsubscribed taps so
	// SubscriberDrops stays monotone across subscriber churn.
	retiredDrops atomic.Uint64
	// subSeq numbers tap events when no trace ring exists (run-goroutine
	// only; with a ring, the ring's push sequence is used).
	subSeq uint64
}

// New creates a Collector.
func New(o Options) *Collector {
	c := &Collector{gen: nextGen()}
	if o.TraceCap > 0 {
		c.trace = newRing(o.TraceCap)
	}
	return c
}

// RegisterProbe records a placed probe and returns its tagged ID. Cold
// path: frameworks call it when they insert instrumentation (ahead of
// time for the static rewriter, at translation time for the dynamic
// frameworks). Run goroutine only. Registration past MaxProbes returns
// NoProbe: further firings are still counted, in the untracked bucket.
func (c *Collector) RegisterProbe(m ProbeMeta) ProbeID {
	if c.gen == 0 {
		// Zero-value Collector: mint the generation lazily.
		c.gen = nextGen()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.metas) >= MaxProbes {
		return NoProbe
	}
	c.metas = append(c.metas, m)
	c.slots = append(c.slots, probeSlot{})
	return ProbeID(c.gen<<probeIndexBits | uint32(len(c.metas)))
}

// Fire records one probe firing: cost cycle units attributed to id at
// program counter pc. Hot path — two uncontended atomic adds on a
// pre-sized slot, no locks. Firings of untagged probes (NoProbe, or an
// ID minted by a different collector) fall into the untracked bucket
// rather than being lost, so totals always reconcile. Run goroutine
// only; concurrent Snapshot calls observe the counters atomically.
func (c *Collector) Fire(id ProbeID, cost, pc uint64) {
	idx := 0
	if uint32(id)>>probeIndexBits&probeGenMask == c.gen {
		if i := int(uint32(id) & probeIndexMask); i >= 1 && i <= len(c.slots) {
			idx = i
		}
	}
	if idx != 0 {
		s := &c.slots[idx-1]
		s.fires.Add(1)
		s.cycles.Add(cost)
	} else {
		c.untrackedFires.Add(1)
		c.untrackedCycles.Add(cost)
	}
	tr, subs := c.trace, c.subs.Load()
	if tr == nil && subs == nil {
		return
	}
	// The published event carries the normalized slot index, the same
	// identifier Stats.Probes rows use.
	var seq uint64
	if tr != nil {
		seq = tr.push(ProbeID(idx), pc, cost)
	} else {
		seq = c.subSeq
		c.subSeq++
	}
	if subs != nil {
		ev := TraceEvent{Seq: seq, Probe: ProbeID(idx), PC: pc, Cost: cost}
		for _, s := range *subs {
			select {
			case s.ch <- ev:
			default:
				// Never block the machine on a slow observer: the event
				// is dropped and accounted on the subscription.
				s.dropped.Add(1)
			}
		}
	}
}

// Skip records one swallowed hit of a sampled probe: the probe's gate
// ran (cost cycle units, the decrement-and-branch) but suppressed the
// firing. Skips attribute to the probe's own slot, preserving the
// residual-zero invariant under sampling: a probe's cycles equal
// fires x dispatch cost + skips x gate cost. Hot path, same discipline
// as Fire (no locks, untracked fallback). Run goroutine only.
func (c *Collector) Skip(id ProbeID, cost uint64) {
	if uint32(id)>>probeIndexBits&probeGenMask == c.gen {
		if i := int(uint32(id) & probeIndexMask); i >= 1 && i <= len(c.slots) {
			s := &c.slots[i-1]
			s.skips.Add(1)
			s.cycles.Add(cost)
			return
		}
	}
	c.untrackedSkips.Add(1)
	c.untrackedCycles.Add(cost)
}

// MutateBuild applies fn to the instrumentation-time counters under the
// collector's lock, so a concurrent Snapshot never observes a torn
// BuildStats. Cold path; run goroutine only.
func (c *Collector) MutateBuild(fn func(*BuildStats)) {
	c.mu.Lock()
	fn(&c.build)
	c.mu.Unlock()
}

// NoteTranslation records one just-in-time block translation and its
// charged cost.
func (c *Collector) NoteTranslation(cost uint64) {
	c.MutateBuild(func(b *BuildStats) {
		b.BlocksTranslated++
		b.TranslationCycles += cost
	})
}

// NumProbes returns the number of registered probes. Safe from any
// goroutine.
func (c *Collector) NumProbes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.metas)
}

// Subscription is one live tap on the collector's firing stream,
// created by Subscribe.
type Subscription struct {
	ch      chan TraceEvent
	dropped atomic.Uint64
}

// Dropped returns how many events this subscription missed because its
// channel was full when the machine fired (the machine never blocks on
// a slow observer).
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Subscribe taps the firing stream: every subsequent Fire sends its
// TraceEvent to ch with a non-blocking send (a full channel drops the
// event and increments the subscription's drop count instead of
// stalling the run). Safe from any goroutine. The caller keeps
// ownership of ch and must Unsubscribe before closing it.
func (c *Collector) Subscribe(ch chan TraceEvent) *Subscription {
	sub := &Subscription{ch: ch}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next []*Subscription
	if cur := c.subs.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, sub)
	c.subs.Store(&next)
	return sub
}

// Unsubscribe detaches a subscription; its drop count is folded into
// the collector's retired total (SubscriberDrops stays monotone). Safe
// from any goroutine.
func (c *Collector) Unsubscribe(sub *Subscription) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.subs.Load()
	if cur == nil {
		return
	}
	var next []*Subscription
	for _, s := range *cur {
		if s != sub {
			next = append(next, s)
		} else {
			c.retiredDrops.Add(s.dropped.Load())
		}
	}
	if len(next) == 0 {
		c.subs.Store(nil)
	} else {
		c.subs.Store(&next)
	}
}

// Subscribers returns the number of live taps.
func (c *Collector) Subscribers() int {
	if subs := c.subs.Load(); subs != nil {
		return len(*subs)
	}
	return 0
}

// SubscriberDrops returns the total events dropped across all taps,
// live and retired. Monotone across scrapes.
func (c *Collector) SubscriberDrops() uint64 {
	n := c.retiredDrops.Load()
	if subs := c.subs.Load(); subs != nil {
		for _, s := range *subs {
			n += s.dropped.Load()
		}
	}
	return n
}

// TraceDropped returns how many trace-ring events have been overwritten
// by wraparound so far (0 with tracing disabled). Safe mid-run.
func (c *Collector) TraceDropped() uint64 {
	if c.trace == nil {
		return 0
	}
	return c.trace.droppedAt(c.trace.next.Load())
}
