package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core/backend"
	"repro/internal/workload"
)

const testScale = 0.1

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Paper Table I Cinnamon column: 10, 40, 39, 20, 17.
	paper := map[string]int{
		"Inst count": 10, "Loop coverage": 40, "Use-after-free": 39,
		"Shadow stack": 20, "Forward CFI": 17,
	}
	for _, r := range rows {
		// The Cinnamon program is always the shortest.
		for fw, n := range map[string]int{"dyninst": r.Dyninst, "janus": r.Janus, "pin": r.Pin} {
			if n < 0 {
				if r.UseCase == "Loop coverage" && fw == "pin" {
					continue // the paper's "-" cell
				}
				t.Errorf("%s/%s: missing implementation", r.UseCase, fw)
				continue
			}
			if r.Cinnamon >= n {
				t.Errorf("%s: Cinnamon (%d lines) not shorter than %s (%d lines)", r.UseCase, r.Cinnamon, fw, n)
			}
		}
		// Within 2x of the paper's Cinnamon line counts.
		want := paper[r.UseCase]
		if r.Cinnamon < want/2 || r.Cinnamon > want*2 {
			t.Errorf("%s: Cinnamon lines = %d, paper has %d", r.UseCase, r.Cinnamon, want)
		}
	}
	var buf strings.Builder
	FormatTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Loop coverage") || !strings.Contains(buf.String(), "-") {
		t.Errorf("formatted table missing rows:\n%s", buf.String())
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("rows = %d, want 23", len(rows))
	}
	sharedHeavy := map[string]bool{"omnetpp": true, "exchange2": true, "bwaves": true, "fotonik3d": true}
	dyninstFails := map[string]bool{"perlbench": true, "gcc": true, "wrf": true, "blender": true, "cam4": true}
	for _, r := range rows {
		pinN, janusN, dynN := r.Counts[backend.Pin], r.Counts[backend.Janus], r.Counts[backend.Dyninst]
		if pinN <= 0 || janusN <= 0 {
			t.Errorf("%s: pin=%d janus=%d", r.Benchmark, pinN, janusN)
			continue
		}
		if dyninstFails[r.Benchmark] {
			if dynN != -1 {
				t.Errorf("%s: dyninst should fail, got %d", r.Benchmark, dynN)
			}
		} else {
			// Static backends agree exactly.
			if dynN != janusN {
				t.Errorf("%s: dyninst %d != janus %d", r.Benchmark, dynN, janusN)
			}
		}
		if sharedHeavy[r.Benchmark] {
			// Pin sees substantially more (shared-library loads).
			if float64(pinN) < 1.10*float64(janusN) {
				t.Errorf("%s: pin %d not > 1.1x janus %d", r.Benchmark, pinN, janusN)
			}
		} else if pinN != janusN {
			// No shared library: all three count identically.
			t.Errorf("%s: pin %d != janus %d without shared libs", r.Benchmark, pinN, janusN)
		}
	}
	gap := SharedLibGap(rows)
	if len(gap) != 4 {
		t.Errorf("shared-lib gap benchmarks = %v, want the 4 shared-heavy ones", gap)
	}
	var buf strings.Builder
	FormatFig12(&buf, rows)
	if !strings.Contains(buf.String(), "FAIL") {
		t.Error("formatted fig12 missing Dyninst failures")
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13(testScale)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(rows)
	dyn, jan, pin := sums[backend.Dyninst], sums[backend.Janus], sums[backend.Pin]
	// The paper's ordering: Pin highest, then Janus, then Dyninst.
	if !(pin.Mean > jan.Mean && jan.Mean > dyn.Mean) {
		t.Errorf("overhead ordering wrong: pin=%.2f janus=%.2f dyninst=%.2f", pin.Mean, jan.Mean, dyn.Mean)
	}
	// Magnitudes in the paper's range: Pin a few percent, Dyninst under 1%.
	if pin.Mean < 2 || pin.Mean > 8 {
		t.Errorf("pin mean = %.2f%%, want 2-8%% (paper: 4.75%%)", pin.Mean)
	}
	if jan.Mean < 0.8 || jan.Mean > 4 {
		t.Errorf("janus mean = %.2f%%, want 0.8-4%% (paper: 1.88%%)", jan.Mean)
	}
	if dyn.Mean <= 0 || dyn.Mean > 2 {
		t.Errorf("dyninst mean = %.2f%%, want 0-2%% (paper: 0.67%%)", dyn.Mean)
	}
	// Dyninst fails on exactly the unrecoverable benchmarks.
	if dyn.N != 18 {
		t.Errorf("dyninst ran %d benchmarks, want 18 (5 failures)", dyn.N)
	}
	if jan.N != 23 || pin.N != 23 {
		t.Errorf("janus/pin ran %d/%d benchmarks, want 23", jan.N, pin.N)
	}
	// Every individual overhead is positive: generated tools never beat
	// hand-written ones.
	for _, r := range rows {
		for fw, v := range r.Overhead {
			if !math.IsNaN(v) && v <= 0 {
				t.Errorf("%s/%s: overhead %.3f%% <= 0", r.Benchmark, fw, v)
			}
		}
	}
	var buf strings.Builder
	FormatFig13(&buf, rows)
	if !strings.Contains(buf.String(), "average") {
		t.Error("formatted fig13 missing averages")
	}
}

func TestPinToolOverheadsShape(t *testing.T) {
	rows, err := PinToolOverheads(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Mean <= 0 || r.Mean > 10 {
			t.Errorf("%s: mean %.2f%% out of range", r.Tool, r.Mean)
		}
		if r.Max < r.Mean {
			t.Errorf("%s: max %.2f%% < mean %.2f%%", r.Tool, r.Max, r.Mean)
		}
		if r.Max > 15 {
			t.Errorf("%s: max %.2f%% too large", r.Tool, r.Max)
		}
	}
	// The paper's ordering: forward CFI costs more than use-after-free.
	if rows[1].Mean <= rows[0].Mean {
		t.Errorf("CFI mean %.2f%% not above UAF mean %.2f%%", rows[1].Mean, rows[0].Mean)
	}
	var buf strings.Builder
	FormatPinTools(&buf, rows)
	if !strings.Contains(buf.String(), "forward CFI") {
		t.Error("formatted pin tools missing rows")
	}
}

func TestDeterministicMeasurements(t *testing.T) {
	spec, _ := workload.ByName("leela")
	r1, err := Fig13(testScale)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fig13(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		for fw, v := range r1[i].Overhead {
			v2 := r2[i].Overhead[fw]
			if v != v2 && !(math.IsNaN(v) && math.IsNaN(v2)) {
				t.Fatalf("%s/%s: %.4f != %.4f across runs", r1[i].Benchmark, fw, v, v2)
			}
		}
	}
	_ = spec
}

func TestCinnamonAndNativeCountsAgree(t *testing.T) {
	// Cross-validation of Figure 12 from both sides: the Cinnamon
	// counting program and the hand-written native tools report the same
	// numbers on the same backend.
	spec, _ := workload.ByName("leela")
	prog, err := BuildBenchmark(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := compileTool("instcount_basic")
	if err != nil {
		t.Fatal(err)
	}
	for _, fw := range Frameworks {
		var cOut strings.Builder
		if _, err := backendRun(tool, prog, fw, &cOut); err != nil {
			t.Fatal(err)
		}
		var nOut strings.Builder
		if _, err := nativeRun(fw, "instcount", prog, &nOut); err != nil {
			t.Fatal(err)
		}
		if cOut.String() != nOut.String() || cOut.Len() == 0 {
			t.Errorf("%s: cinnamon %q != native %q", fw, cOut.String(), nOut.String())
		}
	}
}
