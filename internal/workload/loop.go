package workload

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/obj"
)

// Looped victims: long-running variants of the monitoring victims for
// live-monitoring sessions. A single victim run finishes in microseconds
// — far too fast for a /metrics scrape or an SSE client to observe
// anything — so LoopedVictim rewrites the victim's assembly into a
// driver loop that re-runs the original behaviour a configurable number
// of times, giving the monitor a session worth watching.
//
// The transform is textual and deliberately simple:
//
//   - the victim's `.func main` is renamed `victim_main` and its `halt`
//     instructions become `ret`, turning the program into a callable
//     subroutine;
//   - a new driver `main` is appended that calls victim_main in a loop,
//     counting iterations in a memory cell (the victims clobber
//     registers freely, so the counter cannot live in one);
//   - a `cinloop_cnt` data cell is appended in its own `.data` section.
//
// Victims whose interesting control flow ends in a halt *outside* main
// (stack_smash diverts into evil(), which halts) cannot be looped this
// way and are rejected.

// LoopableVictims returns the victim names LoopedVictim accepts.
func LoopableVictims() []string {
	var names []string
	for name, src := range Victims() {
		if err := checkLoopable(src); err == nil {
			names = append(names, name)
		}
	}
	return names
}

// checkLoopable verifies every halt in the victim lives in .func main.
func checkLoopable(src string) error {
	cur := ""
	for _, line := range strings.Split(src, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == ".func" && len(fields) > 1 {
			cur = fields[1]
			continue
		}
		if fields[0] == "halt" && cur != "main" {
			return fmt.Errorf("halt outside main (in %q)", cur)
		}
	}
	return nil
}

// LoopedVictim assembles a long-running variant of the named victim that
// performs its behaviour iters times before halting. Victims that halt
// outside main (stack_smash) are rejected.
func LoopedVictim(name string, iters int) (*obj.Module, error) {
	if iters < 1 {
		return nil, fmt.Errorf("workload: looped victim %s: iters must be >= 1", name)
	}
	src, ok := Victims()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown victim %q", name)
	}
	if err := checkLoopable(src); err != nil {
		return nil, fmt.Errorf("workload: victim %s is not loopable: %v", name, err)
	}

	var b strings.Builder
	cur := ""
	for _, line := range strings.Split(src, "\n") {
		fields := strings.Fields(line)
		if len(fields) > 0 {
			switch fields[0] {
			case ".func":
				if len(fields) > 1 {
					cur = fields[1]
				}
				if cur == "main" {
					b.WriteString(".func victim_main\n")
					continue
				}
			case "halt":
				if cur == "main" {
					b.WriteString("  ret\n")
					continue
				}
			}
		}
		b.WriteString(line)
		b.WriteString("\n")
	}

	// The driver loop. The victims clobber registers, so the iteration
	// count lives in memory and the loop registers are reloaded after
	// every call.
	fmt.Fprintf(&b, `.func main
cinloop_top:
  call  victim_main
  mov   r12, @cinloop_cnt
  load  r13, [r12]
  add   r13, r13, 1
  store r13, [r12]
  mov   r14, %d
  blt   r13, r14, cinloop_top
  halt
`, iters)
	// The assembler allows re-entering the data section, so the counter
	// cell gets its own .data regardless of what the victim declared.
	b.WriteString(".data\ncinloop_cnt: .space 8\n")

	m, err := asm.Assemble(b.String())
	if err != nil {
		return nil, fmt.Errorf("workload: looped victim %s: %w", name, err)
	}
	return m, nil
}
