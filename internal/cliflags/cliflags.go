// Package cliflags is the shared grouped-flag registry of the command
// line drivers (cmd/cinnamon, cmd/cinnamond). Every flag is declared
// through one of the typed helpers, which record (group, name, argument,
// default, help) in declaration order; the grouped -help output and the
// generated docs/CLI.md sections are both rendered from the recorded
// table, and a test regenerates the document and compares it to the
// committed copy, so the CLI reference cannot rot.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"
)

// Def is one recorded flag: its group, name, argument placeholder
// (empty for booleans), rendered default and help text.
type Def struct {
	Group   string
	Name    string
	Arg     string
	Default string
	Help    string
}

// Set is a flag.FlagSet plus the registry of its declared flags. Flags
// are declared as package variables through the typed helpers, so the
// registry is populated for tests and doc generation without parsing
// anything.
type Set struct {
	// FS is the underlying flag set.
	FS *flag.FlagSet
	// Groups lists the declared groups in presentation order.
	Groups []string
	// Defs records every declared flag in declaration order.
	Defs []Def
}

// New creates a registry-backed flag set with the given presentation
// groups.
func New(name string, groups ...string) *Set {
	return &Set{FS: flag.NewFlagSet(name, flag.ExitOnError), Groups: groups}
}

func (s *Set) record(group, name, arg, def, help string) {
	s.Defs = append(s.Defs, Def{Group: group, Name: name, Arg: arg, Default: def, Help: help})
}

// String declares a string flag in the group.
func (s *Set) String(group, name, def, arg, help string) *string {
	s.record(group, name, arg, def, help)
	return s.FS.String(name, def, help)
}

// Bool declares a boolean flag in the group.
func (s *Set) Bool(group, name string, def bool, help string) *bool {
	d := ""
	if def {
		d = "true"
	}
	s.record(group, name, "", d, help)
	return s.FS.Bool(name, def, help)
}

// Int declares an integer flag in the group.
func (s *Set) Int(group, name string, def int, arg, help string) *int {
	d := ""
	if def != 0 {
		d = fmt.Sprintf("%d", def)
	}
	s.record(group, name, arg, d, help)
	return s.FS.Int(name, def, help)
}

// Float64 declares a float flag in the group.
func (s *Set) Float64(group, name string, def float64, arg, help string) *float64 {
	s.record(group, name, arg, fmt.Sprintf("%g", def), help)
	return s.FS.Float64(name, def, help)
}

// Uint64 declares a uint64 flag in the group.
func (s *Set) Uint64(group, name string, def uint64, arg, help string) *uint64 {
	d := ""
	if def != 0 {
		d = fmt.Sprintf("%d", def)
	}
	s.record(group, name, arg, d, help)
	return s.FS.Uint64(name, def, help)
}

// Duration declares a duration flag in the group.
func (s *Set) Duration(group, name string, def time.Duration, arg, help string) *time.Duration {
	s.record(group, name, arg, def.String(), help)
	return s.FS.Duration(name, def, help)
}

// Usage writes the grouped flag reference (the body of a custom
// flag.Usage, below the caller's "usage:" line).
func (s *Set) Usage(w io.Writer) {
	for _, g := range s.Groups {
		fmt.Fprintf(w, "\n%s:\n", g)
		for _, d := range s.Defs {
			if d.Group != g {
				continue
			}
			head := "-" + d.Name
			if d.Arg != "" {
				head += " " + d.Arg
			}
			fmt.Fprintf(w, "  %-24s %s", head, d.Help)
			if d.Default != "" {
				fmt.Fprintf(w, " (default %s)", d.Default)
			}
			fmt.Fprintln(w)
		}
	}
}

// Markdown renders one "## <group> flags" table per group, the
// building block of the generated docs/CLI.md.
func (s *Set) Markdown(b *strings.Builder) {
	for _, g := range s.Groups {
		fmt.Fprintf(b, "\n## %s flags\n\n", g)
		b.WriteString("| Flag | Default | Description |\n|---|---|---|\n")
		for _, d := range s.Defs {
			if d.Group != g {
				continue
			}
			head := "`-" + d.Name
			if d.Arg != "" {
				head += " " + d.Arg
			}
			head += "`"
			def := d.Default
			if def != "" {
				def = "`" + def + "`"
			}
			fmt.Fprintf(b, "| %s | %s | %s |\n", head, def, d.Help)
		}
	}
}
