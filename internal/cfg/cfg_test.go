package cfg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/obj"
)

func load(t *testing.T, srcs ...string) *Program {
	t.Helper()
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, map[string]uint64{"malloc": obj.IntrinsicBase, "print": obj.IntrinsicBase + 8})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const loopSrc = `
.module a.out
.executable
.entry main
.func main
  mov r1, 0
  mov r2, 10
head:
  add r1, r1, 1
  blt r1, r2, head
  halt
`

func TestSimpleLoop(t *testing.T) {
	p := load(t, loopSrc)
	if len(p.Modules) != 1 {
		t.Fatalf("modules = %d", len(p.Modules))
	}
	m := p.Modules[0]
	if m.Name() != "a.out" || m.ID != 0 {
		t.Errorf("module = %q id=%d", m.Name(), m.ID)
	}
	if len(m.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(m.Funcs))
	}
	f := m.Funcs[0]
	if f.Name != "main" || f.Imprecise {
		t.Errorf("func = %q imprecise=%v", f.Name, f.Imprecise)
	}
	// Blocks: [mov,mov], [add,blt], [halt].
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	if f.NumInsts() != 5 {
		t.Errorf("NumInsts = %d, want 5", f.NumInsts())
	}
	b0, b1, b2 := f.Blocks[0], f.Blocks[1], f.Blocks[2]
	if len(b0.Succs) != 1 || b0.Succs[0] != b1 {
		t.Errorf("b0 succs = %v", b0.Succs)
	}
	if len(b1.Succs) != 2 {
		t.Errorf("b1 succs = %d, want 2 (loop + fallthrough)", len(b1.Succs))
	}
	if len(b2.Succs) != 0 {
		t.Errorf("b2 succs = %v", b2.Succs)
	}
	// Dominators: b0 has no idom; b1's idom is b0; b2's idom is b1.
	if b0.Idom() != nil || b1.Idom() != b0 || b2.Idom() != b1 {
		t.Errorf("idoms: %v %v %v", b0.Idom(), b1.Idom(), b2.Idom())
	}
	if !b0.Dominates(b2) || b2.Dominates(b0) {
		t.Error("Dominates wrong")
	}
	// One loop with header b1 and a self back edge.
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Header != b1 || l.Depth != 1 || l.Parent != nil {
		t.Errorf("loop: header=%v depth=%d parent=%v", l.Header, l.Depth, l.Parent)
	}
	if len(l.Blocks) != 1 || !l.Contains(b1) || l.Contains(b0) {
		t.Errorf("loop blocks = %v", l.Blocks)
	}
	if len(l.Entries) != 1 || l.Entries[0].From != b0 {
		t.Errorf("loop entries = %v", l.Entries)
	}
	if len(l.Backs) != 1 || l.Backs[0].From != b1 {
		t.Errorf("loop backs = %v", l.Backs)
	}
	if len(l.Exits) != 1 || l.Exits[0].To != b2 {
		t.Errorf("loop exits = %v", l.Exits)
	}
}

const nestedSrc = `
.module a.out
.executable
.entry main
.func main
  mov r1, 0
outer:
  mov r2, 0
inner:
  add r2, r2, 1
  blt r2, r4, inner
  add r1, r1, 1
  blt r1, r5, outer
  halt
`

func TestNestedLoops(t *testing.T) {
	p := load(t, nestedSrc)
	f := p.Modules[0].Funcs[0]
	if len(f.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(f.Loops))
	}
	outer, inner := f.Loops[0], f.Loops[1]
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d", outer.Depth, inner.Depth)
	}
	if inner.Parent != outer || outer.Parent != nil {
		t.Errorf("parents wrong: inner=%v outer=%v", inner.Parent, outer.Parent)
	}
	if len(outer.Blocks) <= len(inner.Blocks) {
		t.Errorf("outer (%d blocks) should contain inner (%d blocks)", len(outer.Blocks), len(inner.Blocks))
	}
	for _, b := range inner.Blocks {
		if !outer.Contains(b) {
			t.Errorf("outer loop missing inner block %#x", b.Start)
		}
	}
	// Loop IDs are distinct and assigned.
	if outer.ID == inner.ID {
		t.Error("duplicate loop IDs")
	}
	// Headers dominate all their loop blocks.
	for _, l := range f.Loops {
		for _, b := range l.Blocks {
			if !l.Header.Dominates(b) {
				t.Errorf("loop header %#x does not dominate member %#x", l.Header.Start, b.Start)
			}
		}
	}
}

const diamondSrc = `
.module a.out
.executable
.entry main
.func main
  beq r1, r2, left
  mov r3, 1
  b join
left:
  mov r3, 2
join:
  halt
`

func TestDiamondDominators(t *testing.T) {
	p := load(t, diamondSrc)
	f := p.Modules[0].Funcs[0]
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	entry := f.Blocks[0]
	join := f.Blocks[3]
	if join.Idom() != entry {
		t.Errorf("join idom = %v, want entry", join.Idom())
	}
	if len(f.Loops) != 0 {
		t.Errorf("loops = %d, want 0", len(f.Loops))
	}
}

const callSrc = `
.module a.out
.executable
.entry main
.extern print
.func main
  call helper
  call print
  halt
.func helper
  mov r1, 3
  ret
`

func TestCallsDoNotSplitBlocks(t *testing.T) {
	p := load(t, callSrc)
	m := p.Modules[0]
	if len(m.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(m.Funcs))
	}
	main := m.Funcs[0]
	if len(main.Blocks) != 1 {
		t.Errorf("main blocks = %d, want 1 (calls do not end blocks)", len(main.Blocks))
	}
	helper := p.FuncByName("helper")
	if helper == nil || len(helper.Blocks) != 1 {
		t.Fatalf("helper = %+v", helper)
	}
	if p.FuncByName("nothing") != nil {
		t.Error("FuncByName(nothing) found something")
	}
	// Function IDs are unique.
	if main.ID == helper.ID {
		t.Error("duplicate func IDs")
	}
}

const switchSrc = `
.module a.out
.executable
.entry main
.func main
  mov  r1, @table
  mul  r2, r3, 8
  add  r1, r1, r2
  load r4, [r1]
sw:
  b    r4
case0:
  mov r5, 0
  halt
case1:
  mov r5, 1
  halt
.data
table: .addr case0, case1
.jumptable table, 2, sw, recoverable
`

func TestRecoverableJumpTable(t *testing.T) {
	p := load(t, switchSrc)
	f := p.Modules[0].Funcs[0]
	if f.Imprecise {
		t.Error("recoverable table marked imprecise")
	}
	// The indirect-branch block must have two successors.
	var sw *Block
	for _, b := range f.Blocks {
		if b.Last().IsIndirect() {
			sw = b
		}
	}
	if sw == nil {
		t.Fatal("no indirect branch block")
	}
	if len(sw.Succs) != 2 {
		t.Errorf("switch succs = %d, want 2", len(sw.Succs))
	}
}

func TestUnrecoverableJumpTable(t *testing.T) {
	src := strings.Replace(switchSrc, "recoverable", "unrecoverable", 1)
	p := load(t, src)
	f := p.Modules[0].Funcs[0]
	if !f.Imprecise {
		t.Error("unrecoverable table not marked imprecise")
	}
}

func TestIndirectBranchWithoutTable(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.func main
  b r4
`
	p := load(t, src)
	if !p.Modules[0].Funcs[0].Imprecise {
		t.Error("tableless indirect branch not marked imprecise")
	}
}

const libSrc = `
.module libshared
.global libfn
.func libfn
  mov r1, 9
  ret
`

func TestMultiModule(t *testing.T) {
	mainSrc := `
.module a.out
.executable
.entry main
.extern libfn
.func main
  call libfn
  halt
`
	p := load(t, mainSrc, libSrc)
	if len(p.Modules) != 2 {
		t.Fatalf("modules = %d", len(p.Modules))
	}
	if p.Modules[0].Name() != "a.out" || p.Modules[1].Name() != "libshared" {
		t.Errorf("module order: %q, %q", p.Modules[0].Name(), p.Modules[1].Name())
	}
	lib := p.FuncByName("libfn")
	if lib == nil || lib.Module.ID != 1 {
		t.Fatalf("libfn = %+v", lib)
	}
	// Block IDs unique program-wide.
	seen := map[int]bool{}
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				if seen[b.ID] {
					t.Errorf("duplicate block ID %d", b.ID)
				}
				seen[b.ID] = true
			}
		}
	}
}

func TestLookups(t *testing.T) {
	p := load(t, loopSrc)
	f := p.Modules[0].Funcs[0]
	b1 := f.Blocks[1]
	if got := p.BlockStarting(b1.Start); got != b1 {
		t.Errorf("BlockStarting = %v", got)
	}
	if got := p.BlockContaining(b1.Start + 1); got != b1 && got != nil {
		// +1 is mid-instruction; containment is by extent.
		t.Errorf("BlockContaining = %v", got)
	}
	if got := p.FuncContaining(f.Entry + 3); got != f {
		t.Errorf("FuncContaining = %v", got)
	}
	if got := p.FuncContaining(0x5); got != nil {
		t.Errorf("FuncContaining(0x5) = %v", got)
	}
	if got := p.InstAt(f.Entry); got == nil {
		t.Error("InstAt(entry) = nil")
	}
	if got := p.InstAt(f.Entry + 1); got != nil {
		t.Error("InstAt(mid-inst) != nil")
	}
}

// genStructured emits a random structured function body (nested loops and
// conditionals) and returns the assembly text.
func genStructured(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString(".module a.out\n.executable\n.entry main\n.func main\n  mov r1, 0\n")
	label := 0
	var emit func(depth int)
	emit = func(depth int) {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch choice := r.Intn(4); {
			case choice == 0 && depth < 3: // loop
				l := label
				label++
				fmt.Fprintf(&b, "loop%d:\n  add r2, r2, 1\n", l)
				emit(depth + 1)
				fmt.Fprintf(&b, "  blt r2, r3, loop%d\n", l)
			case choice == 1 && depth < 3: // if/else diamond
				l := label
				label++
				fmt.Fprintf(&b, "  beq r2, r3, else%d\n", l)
				emit(depth + 1)
				fmt.Fprintf(&b, "  b end%d\nelse%d:\n  sub r2, r2, 1\nend%d:\n  nop\n", l, l, l)
			default:
				fmt.Fprintf(&b, "  add r%d, r%d, %d\n", 4+r.Intn(4), 4+r.Intn(4), r.Intn(100))
			}
		}
	}
	emit(0)
	b.WriteString("  halt\n")
	return b.String()
}

func TestRandomStructuredInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := genStructured(r)
		p := load(t, src)
		f := p.Modules[0].Funcs[0]
		entry := f.Blocks[0]
		for _, blk := range f.Blocks {
			if blk.rpo < 0 {
				continue // unreachable
			}
			// Invariant: the entry dominates every reachable block.
			if !entry.Dominates(blk) {
				t.Fatalf("seed %d: entry does not dominate %#x", seed, blk.Start)
			}
			// Invariant: the idom is a strict dominator.
			if id := blk.Idom(); id != nil && !id.Dominates(blk) {
				t.Fatalf("seed %d: idom of %#x does not dominate it", seed, blk.Start)
			}
			// Invariant: preds/succs are symmetric.
			for _, s := range blk.Succs {
				found := false
				for _, pb := range s.Preds {
					if pb == blk {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: asymmetric edge %#x -> %#x", seed, blk.Start, s.Start)
				}
			}
		}
		for _, l := range f.Loops {
			// Invariant: headers dominate members; back edges come from
			// inside; exits lead outside.
			for _, blk := range l.Blocks {
				if !l.Header.Dominates(blk) {
					t.Fatalf("seed %d: loop header does not dominate member", seed)
				}
			}
			for _, e := range l.Backs {
				if !l.Contains(e.From) || e.To != l.Header {
					t.Fatalf("seed %d: bad back edge", seed)
				}
			}
			for _, e := range l.Exits {
				if !l.Contains(e.From) || l.Contains(e.To) {
					t.Fatalf("seed %d: bad exit edge", seed)
				}
			}
			for _, e := range l.Entries {
				if l.Contains(e.From) || e.To != l.Header {
					t.Fatalf("seed %d: bad entry edge", seed)
				}
			}
			// Invariant: nesting depth is consistent with parents.
			if l.Parent != nil && l.Depth != l.Parent.Depth+1 {
				t.Fatalf("seed %d: bad depth", seed)
			}
		}
	}
}
