package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cfg"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Dispatch-tier trajectory: wall-clock throughput of the machine's two
// execution tiers (translated block programs vs the per-instruction
// reference loop) across the paper's five use cases plus a probe-free
// baseline. Cycle-unit results are identical across tiers by
// construction — the conformance oracle enforces it — so the rows
// report the one thing that differs: host nanoseconds per executed
// application instruction.

// DispatchRow is one (use case, VM tier) cell. The JSON form is what
// `experiments -exp=dispatch -json` writes to BENCH_dispatch.json.
type DispatchRow struct {
	UseCase string `json:"use_case"`
	// Mode is the VM execution tier ("translated" or "interpreted").
	Mode string `json:"vm_mode"`
	// Cycles and Insts are the deterministic run counters (identical
	// across tiers for the same cell).
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`
	// WallNs is the best-of-three wall time of the run.
	WallNs int64 `json:"wall_ns"`
	// NsPerInst is WallNs per executed application instruction.
	NsPerInst float64 `json:"ns_per_inst"`
	// CyclesPerSec is the cycle-unit throughput at that wall time.
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// dispatchReps is the per-cell repetition count; the fastest run is
// reported, the standard defense against scheduler noise.
const dispatchReps = 3

// Dispatch measures both VM tiers on the named benchmark: a probe-free
// baseline (the headline block-translation case: no probes, pure
// dispatch) and the five Table I use cases under the Janus backend
// (executable-only, supports every trigger kind including loops). Cells
// run serially — this is a wall-clock measurement, so nothing else may
// share the machine with it.
func Dispatch(benchmark string, scale float64) ([]DispatchRow, error) {
	spec, ok := workload.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
	prog, err := BuildBenchmark(spec, scale)
	if err != nil {
		return nil, err
	}
	modes := []vm.ExecMode{vm.ExecTranslated, vm.ExecInterpreted}

	var rows []DispatchRow
	for _, mode := range modes {
		row, err := timeCell("baseline (no tool)", mode, func() (*vm.Result, error) {
			return vm.New(prog, vm.Config{ExecMode: mode}).Run()
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, c := range table1Cases {
		tool, err := compileTool(c.prog)
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			row, err := timeCell(c.label, mode, func() (*vm.Result, error) {
				return runToolCell(tool, prog, mode)
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runToolCell(tool *engine.CompiledTool, prog *cfg.Program, mode vm.ExecMode) (*vm.Result, error) {
	return backend.Run(tool, prog, backend.Janus, backend.Options{
		Out:    io.Discard,
		VMMode: mode,
	})
}

func timeCell(label string, mode vm.ExecMode, run func() (*vm.Result, error)) (DispatchRow, error) {
	var res *vm.Result
	best := int64(0)
	for i := 0; i < dispatchReps; i++ {
		start := time.Now()
		r, err := run()
		wall := time.Since(start).Nanoseconds()
		if err != nil {
			return DispatchRow{}, fmt.Errorf("bench: %s (%s): %w", label, mode, err)
		}
		if res != nil && (res.Cycles != r.Cycles || res.Insts != r.Insts) {
			return DispatchRow{}, fmt.Errorf("bench: %s (%s): nondeterministic counters", label, mode)
		}
		res = r
		if best == 0 || wall < best {
			best = wall
		}
	}
	row := DispatchRow{
		UseCase: label,
		Mode:    mode.String(),
		Cycles:  res.Cycles,
		Insts:   res.Insts,
		WallNs:  best,
	}
	if res.Insts > 0 {
		row.NsPerInst = float64(best) / float64(res.Insts)
	}
	if best > 0 {
		row.CyclesPerSec = float64(res.Cycles) / (float64(best) / 1e9)
	}
	return row, nil
}

// FormatDispatch renders the tier comparison, pairing each use case's
// translated and interpreted rows with the resulting speedup.
func FormatDispatch(w io.Writer, rows []DispatchRow) {
	fmt.Fprintf(w, "%-20s %-12s %14s %12s %12s %16s %9s\n",
		"Use case", "VM tier", "cycles", "insts", "ns/inst", "cycles/sec", "speedup")
	byKey := map[string]DispatchRow{}
	for _, r := range rows {
		byKey[r.UseCase+"/"+r.Mode] = r
	}
	for _, r := range rows {
		speedup := "-"
		if r.Mode == vm.ExecTranslated.String() {
			if o, ok := byKey[r.UseCase+"/"+vm.ExecInterpreted.String()]; ok && r.WallNs > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(o.WallNs)/float64(r.WallNs))
			}
		}
		fmt.Fprintf(w, "%-20s %-12s %14d %12d %12.2f %16.0f %9s\n",
			r.UseCase, r.Mode, r.Cycles, r.Insts, r.NsPerInst, r.CyclesPerSec, speedup)
	}
}
