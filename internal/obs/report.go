package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ProbeStats is the per-probe report row: the probe's metadata plus its
// accumulated firing counters.
type ProbeStats struct {
	ID ProbeID `json:"id"`
	ProbeMeta
	// Fires is how many times the probe fired.
	Fires uint64 `json:"fires"`
	// Skips is how many hits the probe's sampling gate swallowed (0 for
	// unsampled probes).
	Skips uint64 `json:"skips,omitempty"`
	// Cycles is the total instrumentation cost the probe was charged:
	// Fires × DispatchCost + Skips × gate cost under the deterministic
	// cost model.
	Cycles uint64 `json:"cycles"`
}

// Stats is the exported observability report of one run.
type Stats struct {
	// Backend names the framework the run used.
	Backend string `json:"backend"`
	// Build holds the instrumentation-time statistics.
	Build BuildStats `json:"build"`
	// Probes lists every registered probe with its firing counters, in
	// registration order.
	Probes []ProbeStats `json:"probes"`
	// TotalFires and ProbeCycles aggregate over Probes plus the
	// untracked bucket: every firing of the run is accounted here.
	TotalFires  uint64 `json:"total_fires"`
	ProbeCycles uint64 `json:"probe_cycles"`
	// UntrackedFires/UntrackedCycles accumulate firings of probes that
	// were installed without registration (e.g. by a native tool sharing
	// the machine).
	UntrackedFires  uint64 `json:"untracked_fires,omitempty"`
	UntrackedCycles uint64 `json:"untracked_cycles,omitempty"`
	// TotalSkips and UntrackedSkips aggregate sampling-gate skips the
	// same way TotalFires aggregates firings.
	TotalSkips     uint64 `json:"total_skips,omitempty"`
	UntrackedSkips uint64 `json:"untracked_skips,omitempty"`
	// Trace is the bounded firing-event trace (nil unless enabled).
	Trace *Trace `json:"trace,omitempty"`
	// Governor carries the overhead governor's state when one is
	// attached to the run (see internal/governor; typed as any to keep
	// the dependency arrow pointing at obs).
	Governor any `json:"governor,omitempty"`
}

// Snapshot exports the collector's state as a self-contained report.
// Safe to call from any goroutine at any time, including while the
// instrumented run is executing: counters are loaded atomically, totals
// are computed from the loaded values (so they always reconcile within
// the snapshot), and every counter is monotonically non-decreasing
// across consecutive snapshots. Probe IDs in the report are plain slot
// indexes (1..n), matching TraceEvent.Probe.
func (c *Collector) Snapshot(backendName string) *Stats {
	return c.SnapshotInto(backendName, nil)
}

// SnapshotInto is Snapshot reusing a previous report's allocations:
// when reuse is non-nil its Probes slice backs the new report (grown if
// needed) and every other field is overwritten. The fleet scrape path
// calls it with pooled reports so steady-state scrapes stop allocating
// one probe table per session per scrape. Callers must not retain the
// previous contents of reuse.
func (c *Collector) SnapshotInto(backendName string, reuse *Stats) *Stats {
	c.mu.Lock()
	metas := c.metas
	slots := c.slots
	build := c.build
	c.mu.Unlock()

	s := reuse
	if s == nil {
		s = &Stats{}
	}
	probes := s.Probes
	*s = Stats{Backend: backendName, Build: build}
	if cap(probes) >= len(metas) {
		s.Probes = probes[:len(metas)]
	} else {
		s.Probes = make([]ProbeStats, len(metas))
	}
	for i, m := range metas {
		slot := &slots[i]
		fires := slot.fires.Load()
		skips := slot.skips.Load()
		cycles := slot.cycles.Load()
		s.Probes[i] = ProbeStats{
			ID: ProbeID(i + 1), ProbeMeta: m,
			Fires: fires, Skips: skips, Cycles: cycles,
		}
		s.TotalFires += fires
		s.TotalSkips += skips
		s.ProbeCycles += cycles
	}
	s.UntrackedFires = c.untrackedFires.Load()
	s.UntrackedCycles = c.untrackedCycles.Load()
	s.UntrackedSkips = c.untrackedSkips.Load()
	s.TotalFires += s.UntrackedFires
	s.TotalSkips += s.UntrackedSkips
	s.ProbeCycles += s.UntrackedCycles
	if c.trace != nil {
		events := c.trace.events()
		var nextSeq uint64
		if n := len(events); n > 0 {
			nextSeq = events[n-1].Seq + 1
		}
		s.Trace = &Trace{
			Cap:     len(c.trace.buf),
			Dropped: c.trace.droppedAt(nextSeq),
			Events:  events,
		}
	}
	return s
}

// FiresWhere sums the fire counts of probes matching the predicate —
// the reconciliation helper tests and tools use to compare stats against
// a tool's own reported counts.
func (s *Stats) FiresWhere(match func(ProbeStats) bool) uint64 {
	var n uint64
	for _, p := range s.Probes {
		if match(p) {
			n += p.Fires
		}
	}
	return n
}

// CyclesWhere sums the attributed cycles of probes matching the
// predicate.
func (s *Stats) CyclesWhere(match func(ProbeStats) bool) uint64 {
	var n uint64
	for _, p := range s.Probes {
		if match(p) {
			n += p.Cycles
		}
	}
	return n
}

// WriteJSON writes the report as indented JSON.
func (s *Stats) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// groupKey aggregates table rows: probes sharing a label and mechanism
// (e.g. the per-block placements of one action) fold into one line.
type groupKey struct {
	label, trigger, mech string
}

// WriteTable renders the human-readable report: build statistics, then
// probe groups sorted by attributed cycles (descending), then the trace
// window if one was recorded.
func (s *Stats) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "observability report — backend %s\n", s.Backend)
	b := s.Build
	fmt.Fprintf(w, "  build: actions=%d static-filtered=%d", b.ActionsPlaced, b.StaticFiltered)
	if b.RulesEmitted > 0 {
		fmt.Fprintf(w, " rules=%d", b.RulesEmitted)
	}
	if b.CleanCalls > 0 || b.InlinedCalls > 0 {
		fmt.Fprintf(w, " clean-calls=%d inlined=%d", b.CleanCalls, b.InlinedCalls)
	}
	if b.Snippets > 0 {
		fmt.Fprintf(w, " snippets=%d", b.Snippets)
	}
	if b.BlocksTranslated > 0 {
		fmt.Fprintf(w, " translated-blocks=%d (%d cycles)", b.BlocksTranslated, b.TranslationCycles)
	}
	fmt.Fprintln(w)

	type group struct {
		key    groupKey
		probes int
		fires  uint64
		skips  uint64
		cycles uint64
	}
	idx := make(map[groupKey]int)
	var groups []group
	for _, p := range s.Probes {
		k := groupKey{p.Label, p.Trigger, p.Mechanism}
		i, ok := idx[k]
		if !ok {
			i = len(groups)
			idx[k] = i
			groups = append(groups, group{key: k})
		}
		groups[i].probes++
		groups[i].fires += p.Fires
		groups[i].skips += p.Skips
		groups[i].cycles += p.Cycles
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].cycles > groups[j].cycles })

	fmt.Fprintf(w, "  %-28s %-12s %-14s %8s %12s %12s %14s\n",
		"probe", "trigger", "mechanism", "sites", "fires", "skips", "cycles")
	for _, g := range groups {
		fmt.Fprintf(w, "  %-28s %-12s %-14s %8d %12d %12d %14d\n",
			g.key.label, g.key.trigger, g.key.mech, g.probes, g.fires, g.skips, g.cycles)
	}
	if s.UntrackedFires > 0 || s.UntrackedSkips > 0 {
		fmt.Fprintf(w, "  %-28s %-12s %-14s %8s %12d %12d %14d\n",
			"(untracked)", "-", "-", "-", s.UntrackedFires, s.UntrackedSkips, s.UntrackedCycles)
	}
	fmt.Fprintf(w, "  total: %d fires, %d skips, %d probe cycles\n", s.TotalFires, s.TotalSkips, s.ProbeCycles)

	if s.Trace != nil {
		fmt.Fprintf(w, "  trace: last %d of %d events (cap %d, dropped %d)\n",
			len(s.Trace.Events), s.Trace.Dropped+uint64(len(s.Trace.Events)), s.Trace.Cap, s.Trace.Dropped)
		for _, e := range s.Trace.Events {
			label := "(untracked)"
			if e.Probe > 0 && int(e.Probe) <= len(s.Probes) {
				label = s.Probes[e.Probe-1].Label
			}
			fmt.Fprintf(w, "    #%-8d pc=%#-12x cost=%-6d %s\n", e.Seq, e.PC, e.Cost, label)
		}
	}
}
