package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// goldenStats builds a fully deterministic report exercising every
// writer feature: multi-site probe groups, all three mechanisms, the
// untracked bucket, build statistics and a trace window.
func goldenStats() *Stats {
	c := New(Options{TraceCap: 4})
	m1a := c.RegisterProbe(ProbeMeta{Label: "before inst @7:3", Trigger: TriggerBefore, Mechanism: MechCleanCall, Addr: 0x100, DispatchCost: 31})
	m1b := c.RegisterProbe(ProbeMeta{Label: "before inst @7:3", Trigger: TriggerBefore, Mechanism: MechCleanCall, Addr: 0x140, DispatchCost: 31})
	edge := c.RegisterProbe(ProbeMeta{Label: "edge @12:1", Trigger: TriggerEdge, Mechanism: MechInlinedCall, Addr: 0x200, DispatchCost: 9})
	snip := c.RegisterProbe(ProbeMeta{Label: "block-entry @3:1", Trigger: TriggerBlockEntry, Mechanism: MechSnippet, Addr: 0x300, DispatchCost: 14})
	c.MutateBuild(func(b *BuildStats) {
		b.ActionsPlaced = 3
		b.StaticFiltered = 1
		b.CleanCalls = 2
		b.InlinedCalls = 1
		b.Snippets = 1
	})
	c.NoteTranslation(120)
	c.NoteTranslation(95)

	for i := 0; i < 5; i++ {
		c.Fire(m1a, 31, 0x100)
	}
	for i := 0; i < 3; i++ {
		c.Fire(m1b, 31, 0x140)
	}
	for i := 0; i < 20; i++ {
		c.Fire(edge, 9, 0x200)
	}
	c.Fire(snip, 14, 0x300)
	c.Fire(NoProbe, 6, 0x999)
	return c.Snapshot("pin")
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(run `go test ./internal/obs -update` to accept)", name, got, want)
	}
}

func TestWriteTableGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenStats().WriteTable(&buf)
	checkGolden(t, "report.txt", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStats().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", buf.Bytes())
}
