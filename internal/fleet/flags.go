package fleet

import (
	"time"

	"repro/internal/cliflags"
)

// The cinnamond flag table. It lives here rather than in cmd/cinnamond
// because package main cannot be imported: cmd/cinnamon's CLI.md
// generator renders this registry into the shared document, so the
// byte-for-byte doc gate (TestCLIDocCurrent) covers both binaries.

const (
	groupDaemon    = "Daemon"
	groupScheduler = "Scheduler"
)

// CLIOpts are cinnamond's parsed flag values, in registry order.
type CLIOpts struct {
	Listen       *string
	Interval     *time.Duration
	DrainTimeout *time.Duration
	TraceBuf     *int
	Workers      *int
	Queue        *int
	Manifest      *string
	Loop          *int
	ArtifactCache *bool
}

// CLIFlags builds a fresh cinnamond flag registry. Each call returns an
// independent set, so the daemon's main and the doc generator never
// share mutable flag state.
func CLIFlags() (*cliflags.Set, *CLIOpts) {
	reg := cliflags.New("cinnamond", groupDaemon, groupScheduler)
	o := &CLIOpts{
		Listen:       reg.String(groupDaemon, "listen", "127.0.0.1:9137", "<addr>", "serve the fleet endpoints on this address (host:port; :0 picks a port): /metrics, /series, /sessions, /trace (SSE), /healthz/live, /healthz/ready"),
		Interval:     reg.Duration(groupDaemon, "interval", time.Second, "<dur>", "per-session time-series sampling period"),
		DrainTimeout: reg.Duration(groupDaemon, "drain-timeout", 30*time.Second, "<dur>", "graceful-drain deadline on SIGTERM/SIGINT: running sessions past it are cooperatively cancelled"),
		TraceBuf:     reg.Int(groupDaemon, "trace-buf", 256, "<n>", "per-subscriber buffer depth on the multiplexed SSE /trace stream (overflow events are dropped and counted)"),
		Workers:      reg.Int(groupScheduler, "workers", 4, "<n>", "bounded worker pool size: how many sessions run concurrently"),
		Queue:        reg.Int(groupScheduler, "queue", 256, "<n>", "admitted-session queue bound; submissions beyond it are rejected"),
		Manifest:     reg.String(groupScheduler, "manifest", "", "<file>", "submit this JSON job manifest at boot (an array of job specs, or {\"sessions\":[...]})"),
		Loop:          reg.Int(groupScheduler, "loop", 50000, "<n>", "default victim loop count for jobs that do not set one"),
		ArtifactCache: reg.Bool(groupScheduler, "artifact-cache", true, "share compiled tools, built victims and instrumentation-build templates across sessions (=false rebuilds per session; restart attempts still reuse their own build)"),
	}
	return reg, o
}
