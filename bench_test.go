// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation. Each benchmark prints its table once (on the
// first iteration) and reports the headline numbers as custom metrics:
//
//	go test -bench=. -benchmem
//
// The workload scale defaults to the paper-equivalent "test" input
// (scale 1.0); set CINNAMON_SCALE to a smaller value for quicker runs.
package repro

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core/backend"
)

func scale() float64 {
	if s := os.Getenv("CINNAMON_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 1.0
}

var printOnce sync.Map

func printHeader(name string) bool {
	_, loaded := printOnce.LoadOrStore(name, true)
	if !loaded {
		fmt.Printf("\n===== %s =====\n", name)
	}
	return !loaded
}

// BenchmarkTable1 regenerates Table I: code lengths of the five use cases
// in Cinnamon versus native Dyninst, Janus and Pin implementations.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if printHeader("Table I: code lengths (lines)") {
			bench.FormatTable1(os.Stdout, rows)
		}
		if i == 0 {
			var cinn, frameworks int
			for _, r := range rows {
				cinn += r.Cinnamon
				for _, n := range []int{r.Dyninst, r.Janus, r.Pin} {
					if n > 0 {
						frameworks += n
					}
				}
			}
			b.ReportMetric(float64(cinn)/float64(len(rows)), "cinnamon-lines/case")
			b.ReportMetric(float64(frameworks)/float64(3*len(rows)-1), "native-lines/case")
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: load-instruction counts reported
// by the Cinnamon counting program under each backend across the
// synthetic SPEC CPU 2017 suite.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12(scale())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader("Figure 12: load-instruction counts per backend") {
			bench.FormatFig12(os.Stdout, rows)
			fmt.Printf("shared-library gap (Pin > static): %v\n", bench.SharedLibGap(rows))
		}
		if i == 0 {
			b.ReportMetric(float64(len(bench.SharedLibGap(rows))), "shared-lib-gap-benchmarks")
		}
	}
}

// BenchmarkFig13 regenerates Figure 13: overhead of the
// Cinnamon-generated basic-block counting tool versus the hand-written
// native tool, per framework and benchmark.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13(scale())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader("Figure 13: Cinnamon overhead (%) vs native tools") {
			bench.FormatFig13(os.Stdout, rows)
		}
		if i == 0 {
			sums := bench.Summarize(rows)
			b.ReportMetric(sums[backend.Pin].Mean, "pin-overhead-%")
			b.ReportMetric(sums[backend.Janus].Mean, "janus-overhead-%")
			b.ReportMetric(sums[backend.Dyninst].Mean, "dyninst-overhead-%")
		}
	}
}

// BenchmarkPinToolOverheads regenerates the Section VI-D numbers: Pin
// overheads of the use-after-free and forward-CFI monitors.
func BenchmarkPinToolOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.PinToolOverheads(scale())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader("Section VI-D: monitoring-tool overheads on Pin") {
			bench.FormatPinTools(os.Stdout, rows)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Mean, "uaf-overhead-%")
			b.ReportMetric(rows[1].Mean, "cfi-overhead-%")
		}
	}
}

// BenchmarkAblations reports the extra studies beyond the paper:
// Figure 5a vs 5b counting cost, static vs dynamic constraint
// evaluation, and each framework's base (empty-tool) cost.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if printHeader("Ablations") {
			for _, fw := range []string{backend.Dyninst, backend.Janus, backend.Pin} {
				rows, err := bench.AblationCounting(fw, scale())
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("\nper-inst (fig 5a) vs per-block (fig 5b) counting, %s backend:\n", fw)
				bench.FormatAblation(os.Stdout, "per-inst", "per-block", rows)
			}
			rows, err := bench.AblationConstraints(backend.Pin, scale())
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("\nstatic vs dynamic action constraint, pin backend:\n")
			bench.FormatAblation(os.Stdout, "static-where", "dynamic-where", rows)
			base, err := bench.AblationBaseCost(scale())
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("\nempty-tool base cost: dyninst=%.2f%% janus=%.2f%% pin=%.2f%%\n",
				base[backend.Dyninst], base[backend.Janus], base[backend.Pin])
		} else {
			if _, err := bench.AblationBaseCost(scale()); err != nil {
				b.Fatal(err)
			}
		}
	}
}
