// Emitting framework code: the Cinnamon compiler's second output path.
// Besides running tools directly, it lowers a program to the C/C++
// sources that plug into each real framework (the paper's Figure 4
// workflow): a Pin tool, a Dyninst mutator, and a Janus static pass with
// its dynamic handlers.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"repro/cinnamon"
)

const toolSrc = `
uint64 inst_count = 0;
basicblock B {
  uint64 local_inst_count = 0;
  inst I where (I.opcode == Load) {
    local_inst_count = local_inst_count + 1;
  }
  before B where (local_inst_count > 0) {
    inst_count = inst_count + local_inst_count;
  }
}
exit {
  print(inst_count);
}
`

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	tool, err := cinnamon.Compile(toolSrc)
	if err != nil {
		return err
	}
	for _, backend := range cinnamon.Backends() {
		files, err := tool.GenerateCode(backend)
		if err != nil {
			return err
		}
		var names []string
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "// ================= %s (%s backend) =================\n%s\n", n, backend, files[n])
		}
	}
	return nil
}
