package codegen

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core/engine"
	"repro/internal/progs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func generate(t *testing.T, progName, backendName string) map[string]string {
	t.Helper()
	tool, err := engine.Compile(progs.MustSource(progName))
	if err != nil {
		t.Fatal(err)
	}
	files, err := Generate(tool, backendName)
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestGoldenFiles(t *testing.T) {
	backendsFor := func(name string) []string {
		if name == progs.LoopCoverage {
			// Pin has no loops; codegen refuses, like the paper.
			return []string{"dyninst", "janus"}
		}
		return []string{"pin", "dyninst", "janus"}
	}
	for _, progName := range progs.Names() {
		for _, b := range backendsFor(progName) {
			t.Run(progName+"/"+b, func(t *testing.T) {
				files := generate(t, progName, b)
				if len(files) == 0 {
					t.Fatal("no files generated")
				}
				for fname, content := range files {
					golden := filepath.Join("testdata", progName+"_"+b+"_"+fname+".golden")
					if *update {
						if err := os.MkdirAll("testdata", 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(golden, []byte(content), 0o644); err != nil {
							t.Fatal(err)
						}
						continue
					}
					want, err := os.ReadFile(golden)
					if err != nil {
						t.Fatalf("missing golden file (run with -update): %v", err)
					}
					if string(want) != content {
						t.Errorf("%s: generated code differs from golden file;\nre-run with -update and review the diff", golden)
					}
				}
			})
		}
	}
}

func TestPinRejectsLoopCommands(t *testing.T) {
	tool, err := engine.Compile(progs.MustSource(progs.LoopCoverage))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(tool, "pin"); err == nil || !strings.Contains(err.Error(), "no notion of loops") {
		t.Fatalf("err = %v, want loop rejection", err)
	}
}

func TestUnknownBackend(t *testing.T) {
	tool, err := engine.Compile(progs.MustSource(progs.InstCountBasic))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(tool, "valgrind"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestGeneratedPinToolShape(t *testing.T) {
	files := generate(t, progs.UseAfterFree, "pin")
	src := files["pin_tool.cpp"]
	for _, want := range []string{
		"INS_AddInstrumentFunction",
		"PIN_StartProgram",
		"IARG_FUNCARG_ENTRYPOINT_VALUE, 1",
		"IARG_FUNCRET_EXITPOINT_VALUE",
		"IARG_MEMORYREAD_EA",
		"cnm_action_1",
		"IPOINT_AFTER",
		`cnm::trgname(I) == "malloc"`,
		"std::map<uintptr_t, int64_t> freed",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("pin tool missing %q", want)
		}
	}
}

func TestGeneratedDyninstToolShape(t *testing.T) {
	files := generate(t, progs.InstCountBB, "dyninst")
	src := files["dyninst_mutator.cpp"]
	for _, want := range []string{
		"BPatch_binaryEdit* app = bpatch.openBinary",
		"BPatch_funcCallExpr",
		"insert_action",
		"local_inst_count",
		"app->writeFile",
		"findEntryPoint",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("dyninst mutator missing %q", want)
		}
	}
}

func TestGeneratedJanusToolShape(t *testing.T) {
	files := generate(t, progs.InstCountBB, "janus")
	static, handlers := files["janus_static_pass.cpp"], files["janus_handlers.cpp"]
	for _, want := range []string{
		"cnm_static_pass(JanusContext* jc)",
		"cnm::emit_rule(jc, CNM_RULE_1",
		"for (BasicBlock& B : f_.blocks)",
	} {
		if !strings.Contains(static, want) {
			t.Errorf("janus static pass missing %q", want)
		}
	}
	for _, want := range []string{
		"dr_insert_clean_call",
		"cnm_action_1",
		"get_trigger_instruction",
		"OPND_CREATE_INT64(rule->data[0])",
	} {
		if !strings.Contains(handlers, want) {
			t.Errorf("janus handlers missing %q", want)
		}
	}
}

func TestGeneratedForwardCFIUsesFiles(t *testing.T) {
	files := generate(t, progs.ForwardCFI, "dyninst")
	src := files["dyninst_mutator.cpp"]
	for _, want := range []string{
		"cnm::write_to_file(outfile, cnm::startaddr(F))",
		"cnm_init_1",
		"outfile.getline()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("forward CFI mutator missing %q", want)
		}
	}
}

func TestModuleCommandCodegen(t *testing.T) {
	tool, err := engine.Compile(`
uint64 n = 0;
module M {
  n = n + 1;
}
exit { print(n); }
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"pin", "dyninst", "janus"} {
		files, err := Generate(tool, b)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		for name, content := range files {
			if strings.Contains(content, "/*?*/") {
				t.Errorf("%s/%s contains unlowered expressions", b, name)
			}
		}
	}
}

func TestRuntimeHeaderEmitted(t *testing.T) {
	tool, err := engine.Compile(`inst I { before I { print(1); } }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"pin", "dyninst", "janus"} {
		files, err := Generate(tool, b)
		if err != nil {
			t.Fatal(err)
		}
		hdr, ok := files["cnm_runtime.h"]
		if !ok {
			t.Fatalf("%s: cnm_runtime.h missing", b)
		}
		for _, want := range []string{"namespace cnm", "CNM_OP_LOAD", "print"} {
			if !strings.Contains(hdr, want) {
				t.Errorf("%s header missing %q", b, want)
			}
		}
	}
}
