// Package artifacts is the shared artifact cache over the session build
// pipeline: the fleet-scale fast path that makes warm session startup
// near-free.
//
// Every cinnamond session (and every cinnamon.Tool.Run) repeats the
// same expensive, deterministic work: lex/parse/check/closure-compile
// the tool source, assemble and decode the looped victim, and walk the
// victim's CFE hierarchy to build the placement rule table. None of it
// depends on the session — the same separation BISM draws between its
// transformer (build once) and weaver (apply per target). This package
// caches the three artifacts:
//
//   - compiled tools, keyed by the SHA-256 of the source;
//   - assembled+looped victim programs, keyed by (victim, loop count) —
//     shareable because vm.New copies module images into private memory
//     and nothing mutates the recovered CFG after Build;
//   - instrumentation rule templates (engine.Template), keyed by the
//     (tool, victim program, backend, build options) tuple. Pointer
//     identity on the tool and program makes false sharing impossible:
//     a different source, loop count or victim yields different
//     pointers and therefore a different key.
//
// Everything cached is immutable; per-session state (probe IDs,
// counters, bound action closures, VM memory) is created per lookup by
// engine.Template.Instantiate and vm.New exactly as on the cold path.
//
// Each keyed store is bounded: inserts past the capacity evict the
// least-recently-used entry, and evictions are counted so cache
// pressure is visible in the fleet metrics.
package artifacts

import (
	"crypto/sha256"
	"sync"

	"repro/internal/cfg"
	"repro/internal/core/engine"
	"repro/internal/obj"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Default per-kind entry capacities. Templates outnumber tools and
// victims (one per tool×victim×backend×options combination), so their
// store is larger.
const (
	defaultToolCap     = 64
	defaultVictimCap   = 64
	defaultTemplateCap = 256
)

// Options parameterizes a Cache.
type Options struct {
	// ToolCap, VictimCap and TemplateCap bound the three stores
	// (defaults 64/64/256; negative disables the bound).
	ToolCap     int
	VictimCap   int
	TemplateCap int
}

// Stats is a point-in-time view of cache effectiveness, per artifact
// kind, plus total evictions.
type Stats struct {
	ToolHits, ToolMisses         uint64
	VictimHits, VictimMisses     uint64
	TemplateHits, TemplateMisses uint64
	Evictions                    uint64
	// Tools, Victims and Templates count live entries.
	Tools, Victims, Templates int
}

// Hits and Misses total over the three artifact kinds.
func (s Stats) Hits() uint64 { return s.ToolHits + s.VictimHits + s.TemplateHits }

// Misses totals over the three artifact kinds.
func (s Stats) Misses() uint64 { return s.ToolMisses + s.VictimMisses + s.TemplateMisses }

// Victim is one cached victim build: the assembled+looped module loaded
// into an address space with its control flow recovered. Prog is shared
// read-only across sessions (the VM copies images into private memory).
type Victim struct {
	Mod  *obj.Module
	Prog *cfg.Program
}

// TemplateKey identifies one rule template: the build inputs plus every
// engine/backend option that changes what BuildRules produces. Runtime
// options (fuel, writers, collectors, VM tier) are deliberately absent —
// they bind per session at Instantiate/run time.
type TemplateKey struct {
	Tool *engine.CompiledTool
	Prog *cfg.Program
	// Backend is the placer name; module scope and loop support differ
	// per backend, so tables are never shared across frameworks.
	Backend string
	// PinLoopDetection, NoIROpt and Adaptive change the table itself
	// (loop preflight and edge lowering; optimization passes;
	// coalescing).
	PinLoopDetection bool
	NoIROpt          bool
	Adaptive         bool
}

// Lookup is the outcome of one cache consultation, for per-session
// accounting: exactly one of Hit/Miss is true per lookup, and Evicted
// counts entries the resulting insert displaced.
type Lookup struct {
	Hit     bool
	Evicted int
}

type toolKey [sha256.Size]byte

type victimKey struct {
	name string
	loop int
}

// store is one bounded LRU map. Values are immutable once inserted;
// the mutex only guards the index.
type store[K comparable, V any] struct {
	cap     int
	entries map[K]V
	order   []K // LRU order, oldest first
}

func newStore[K comparable, V any](capacity int) *store[K, V] {
	return &store[K, V]{cap: capacity, entries: make(map[K]V)}
}

func (s *store[K, V]) get(k K) (V, bool) {
	v, ok := s.entries[k]
	if ok {
		s.touch(k)
	}
	return v, ok
}

func (s *store[K, V]) touch(k K) {
	for i, ek := range s.order {
		if ek == k {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = k
			return
		}
	}
}

// put inserts k (overwriting a racing duplicate) and returns how many
// entries were evicted to stay within capacity.
func (s *store[K, V]) put(k K, v V) int {
	if _, dup := s.entries[k]; dup {
		s.entries[k] = v
		s.touch(k)
		return 0
	}
	s.entries[k] = v
	s.order = append(s.order, k)
	evicted := 0
	for s.cap > 0 && len(s.order) > s.cap {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, victim)
		evicted++
	}
	return evicted
}

// Cache is the keyed, concurrency-safe artifact cache. The zero value
// is not usable; construct with New.
type Cache struct {
	mu        sync.Mutex
	tools     *store[toolKey, *engine.CompiledTool]
	victims   *store[victimKey, *Victim]
	templates *store[TemplateKey, *engine.Template]
	stats     Stats
}

// New creates an empty cache.
func New(opts Options) *Cache {
	capOr := func(v, def int) int {
		if v == 0 {
			return def
		}
		return v
	}
	return &Cache{
		tools:     newStore[toolKey, *engine.CompiledTool](capOr(opts.ToolCap, defaultToolCap)),
		victims:   newStore[victimKey, *Victim](capOr(opts.VictimCap, defaultVictimCap)),
		templates: newStore[TemplateKey, *engine.Template](capOr(opts.TemplateCap, defaultTemplateCap)),
	}
}

// Tool returns the compiled form of src, compiling on miss. Two sources
// share an entry only when byte-identical.
func (c *Cache) Tool(src string) (*engine.CompiledTool, Lookup, error) {
	k := toolKey(sha256.Sum256([]byte(src)))
	c.mu.Lock()
	if t, ok := c.tools.get(k); ok {
		c.stats.ToolHits++
		c.mu.Unlock()
		return t, Lookup{Hit: true}, nil
	}
	c.stats.ToolMisses++
	c.mu.Unlock()

	t, err := engine.Compile(src)
	if err != nil {
		return nil, Lookup{}, err
	}
	c.mu.Lock()
	// A racing compile of the same source may have inserted already;
	// keep the first entry so every later session binds to one pointer
	// (and with it one template key).
	if prev, ok := c.tools.get(k); ok {
		c.mu.Unlock()
		return prev, Lookup{}, nil
	}
	ev := c.tools.put(k, t)
	c.stats.Evictions += uint64(ev)
	c.mu.Unlock()
	return t, Lookup{Evicted: ev}, nil
}

// Victim returns the loaded, CFG-recovered program of the named victim
// looped loop times, building on miss.
func (c *Cache) Victim(name string, loop int) (*Victim, Lookup, error) {
	k := victimKey{name: name, loop: loop}
	c.mu.Lock()
	if v, ok := c.victims.get(k); ok {
		c.stats.VictimHits++
		c.mu.Unlock()
		return v, Lookup{Hit: true}, nil
	}
	c.stats.VictimMisses++
	c.mu.Unlock()

	mod, err := workload.LoopedVictim(name, loop)
	if err != nil {
		return nil, Lookup{}, err
	}
	p, err := obj.Load([]*obj.Module{mod}, vm.RuntimeExterns())
	if err != nil {
		return nil, Lookup{}, err
	}
	prog, err := cfg.Build(p)
	if err != nil {
		return nil, Lookup{}, err
	}
	v := &Victim{Mod: mod, Prog: prog}
	c.mu.Lock()
	if prev, ok := c.victims.get(k); ok {
		c.mu.Unlock()
		return prev, Lookup{}, nil
	}
	ev := c.victims.put(k, v)
	c.stats.Evictions += uint64(ev)
	c.mu.Unlock()
	return v, Lookup{Evicted: ev}, nil
}

// Template returns the cached rule template for the key, if any.
func (c *Cache) Template(k TemplateKey) (*engine.Template, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.templates.get(k)
	if ok {
		c.stats.TemplateHits++
	} else {
		c.stats.TemplateMisses++
	}
	return t, ok
}

// PutTemplate stores a freshly built template and returns how many
// entries its insert evicted. Nil templates (unshareable builds) are
// ignored.
func (c *Cache) PutTemplate(k TemplateKey, t *engine.Template) int {
	if t == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := c.templates.put(k, t)
	c.stats.Evictions += uint64(ev)
	return ev
}

// Stats returns a point-in-time view of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Tools = len(c.tools.entries)
	s.Victims = len(c.victims.entries)
	s.Templates = len(c.templates.entries)
	return s
}

// shared is the process-wide default cache cinnamon.Run* consults (the
// fleet scheduler builds its own so daemon stats are self-contained).
var (
	sharedOnce sync.Once
	sharedC    *Cache
)

// Shared returns the process-wide default cache.
func Shared() *Cache {
	sharedOnce.Do(func() { sharedC = New(Options{}) })
	return sharedC
}
