// Package obs is the runtime observability layer: an always-compiled,
// zero-cost-when-disabled subsystem that attributes instrumentation cost
// to the probes that incur it.
//
// The paper's evaluation (Figure 13) hinges on understanding *where*
// instrumentation overhead goes — clean calls versus inlined calls versus
// snippets, dispatch versus translation. A Collector makes that breakdown
// observable for any run: per-probe firing counters and cycle
// attribution, per-backend instrumentation-time statistics (rules
// emitted, snippets baked in, clean calls inserted, blocks translated),
// and a bounded ring-buffer trace of probe firings.
//
// The design mirrors the VM's de-mapped probe dispatch: counters live in
// pre-sized slots indexed by ProbeID, so the hot path (Collector.Fire)
// is two array writes — no map lookups, no allocation. Registration
// (RegisterProbe) happens on cold paths only: ahead of execution for the
// static frameworks, at block-translation time for the dynamic ones.
// When no Collector is attached the only cost to the execution substrate
// is one predictable nil-check branch per probe dispatch batch.
//
// A Collector belongs to a single run and is not safe for concurrent
// use; parallel harnesses (internal/bench) attach one Collector per run.
package obs

// ProbeID identifies a registered probe within one Collector. IDs are
// dense and start at 1; NoProbe (0) marks an untagged probe, whose
// firings are accumulated in the collector's untracked bucket.
type ProbeID int32

// NoProbe is the zero ProbeID: the probe is not individually tracked.
const NoProbe ProbeID = 0

// Trigger names for ProbeMeta.Trigger (shared vocabulary across the
// three frameworks so reports and tests can filter uniformly).
const (
	TriggerBefore     = "before"
	TriggerAfter      = "after"
	TriggerBlockEntry = "block-entry"
	TriggerEdge       = "edge"
)

// Mechanism names for ProbeMeta.Mechanism.
const (
	MechCleanCall   = "clean-call"   // Pin analysis call / Janus non-inlined handler
	MechInlinedCall = "inlined-call" // Pin/DynamoRIO inlined dispatch
	MechSnippet     = "snippet"      // Dyninst trampoline + snippet
)

// ProbeMeta describes one placed probe for attribution reports.
type ProbeMeta struct {
	// Label identifies the tool-level origin of the probe (for Cinnamon
	// tools: trigger, target element type and source position of the
	// action, e.g. "before inst @7:3").
	Label string `json:"label"`
	// Trigger is the trigger point ("before", "after", "block-entry",
	// "edge").
	Trigger string `json:"trigger"`
	// Mechanism is how the framework dispatches the probe ("clean-call",
	// "inlined-call", "snippet").
	Mechanism string `json:"mechanism"`
	// Addr is the instrumented address (the destination block start for
	// edge probes).
	Addr uint64 `json:"addr"`
	// DispatchCost is the priced cost (cycle units) of one firing:
	// mechanism dispatch plus argument materialization plus the action
	// body estimate.
	DispatchCost uint64 `json:"dispatch_cost"`
}

// probeSlot is the hot-path counter pair of one probe.
type probeSlot struct {
	fires  uint64
	cycles uint64
}

// BuildStats are instrumentation-time statistics: what each layer did to
// set the run up, before and while code was translated. All fields are
// cold-path counters.
type BuildStats struct {
	// ActionsPlaced counts compiled actions the engine handed to the
	// backend placer.
	ActionsPlaced int `json:"actions_placed"`
	// StaticFiltered counts placements skipped because a static `where`
	// constraint evaluated false at instrumentation time.
	StaticFiltered int `json:"static_filtered"`
	// RulesEmitted counts Janus rewrite rules produced by the static
	// analyzer (0 on other backends).
	RulesEmitted int `json:"rules_emitted,omitempty"`
	// CleanCalls and InlinedCalls count dynamic-framework call
	// insertions by dispatch mechanism (Pin analysis calls, Janus
	// handlers).
	CleanCalls   int `json:"clean_calls,omitempty"`
	InlinedCalls int `json:"inlined_calls,omitempty"`
	// Snippets counts Dyninst snippet insertions — trampolines baked
	// into the rewritten binary ahead of execution.
	Snippets int `json:"snippets,omitempty"`
	// BlocksTranslated counts just-in-time block translations, and
	// TranslationCycles the cycle units they were charged (Pin traces,
	// Janus/DynamoRIO block builds; 0 for the static rewriter).
	BlocksTranslated  int    `json:"blocks_translated,omitempty"`
	TranslationCycles uint64 `json:"translation_cycles,omitempty"`
}

// Options parameterizes a Collector.
type Options struct {
	// TraceCap bounds the firing-event trace ring buffer; 0 disables
	// tracing entirely (firings are still counted).
	TraceCap int
}

// Collector accumulates observability data for one instrumented run.
// The zero Collector is usable; a nil *Collector everywhere means
// "observability disabled".
type Collector struct {
	metas []ProbeMeta // index = ProbeID-1
	slots []probeSlot // parallel to metas

	untrackedFires  uint64
	untrackedCycles uint64

	build BuildStats
	trace *ring
}

// New creates a Collector.
func New(o Options) *Collector {
	c := &Collector{}
	if o.TraceCap > 0 {
		c.trace = newRing(o.TraceCap)
	}
	return c
}

// RegisterProbe records a placed probe and returns its ID. Cold path:
// frameworks call it when they insert instrumentation (ahead of time for
// the static rewriter, at translation time for the dynamic frameworks).
func (c *Collector) RegisterProbe(m ProbeMeta) ProbeID {
	c.metas = append(c.metas, m)
	c.slots = append(c.slots, probeSlot{})
	return ProbeID(len(c.metas))
}

// Fire records one probe firing: cost cycle units attributed to id at
// program counter pc. Hot path — slot counters are pre-sized arrays
// indexed by ID; firings of untagged probes (NoProbe, or an ID from a
// different collector) fall into the untracked bucket rather than being
// lost, so totals always reconcile.
func (c *Collector) Fire(id ProbeID, cost, pc uint64) {
	if id > 0 && int(id) <= len(c.slots) {
		s := &c.slots[id-1]
		s.fires++
		s.cycles += cost
	} else {
		c.untrackedFires++
		c.untrackedCycles += cost
	}
	if c.trace != nil {
		c.trace.push(id, pc, cost)
	}
}

// Build exposes the mutable instrumentation-time counters. Cold path.
func (c *Collector) Build() *BuildStats { return &c.build }

// NoteTranslation records one just-in-time block translation and its
// charged cost.
func (c *Collector) NoteTranslation(cost uint64) {
	c.build.BlocksTranslated++
	c.build.TranslationCycles += cost
}

// NumProbes returns the number of registered probes.
func (c *Collector) NumProbes() int { return len(c.metas) }
