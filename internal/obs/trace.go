package obs

// TraceEvent is one probe firing in the event trace.
type TraceEvent struct {
	// Seq is the global firing sequence number (0-based, counting every
	// Fire on the collector, including untracked ones).
	Seq uint64 `json:"seq"`
	// Probe is the fired probe's ID (NoProbe for untracked firings).
	Probe ProbeID `json:"probe"`
	// PC is the program counter at the firing.
	PC uint64 `json:"pc"`
	// Cost is the cycle units the firing was charged.
	Cost uint64 `json:"cost"`
}

// ring is a bounded event buffer: pushes never allocate after creation,
// and once full each push overwrites the oldest event (wraparound), so a
// long run keeps the most recent window.
type ring struct {
	buf  []TraceEvent
	next uint64 // total events ever pushed
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]TraceEvent, capacity)}
}

func (r *ring) push(id ProbeID, pc, cost uint64) {
	r.buf[r.next%uint64(len(r.buf))] = TraceEvent{Seq: r.next, Probe: id, PC: pc, Cost: cost}
	r.next++
}

// events returns the retained window in sequence order (oldest first).
func (r *ring) events() []TraceEvent {
	n := uint64(len(r.buf))
	if r.next <= n {
		out := make([]TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	// Full ring: the oldest retained event is at next % n.
	out := make([]TraceEvent, 0, n)
	start := r.next % n
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// dropped returns how many events were overwritten.
func (r *ring) dropped() uint64 {
	if n := uint64(len(r.buf)); r.next > n {
		return r.next - n
	}
	return 0
}

// Trace is the exported form of the firing-event ring buffer.
type Trace struct {
	// Cap is the ring capacity the run was configured with.
	Cap int `json:"cap"`
	// Dropped counts events overwritten by wraparound: the trace holds
	// the *last* Cap firings of a run with Dropped+len(Events) total.
	Dropped uint64 `json:"dropped"`
	// Events is the retained window, oldest first, with contiguous Seq.
	Events []TraceEvent `json:"events"`
}
