// Command cinnasm assembles, inspects and disassembles binaries for the
// synthetic machine:
//
//	cinnasm -o app.cino app.s          # assemble to an object file
//	cinnasm -dump app.cino             # inspect an object file
//	cinnasm -dump app.s                # assemble and inspect
//	cinnasm -gen mcf -scale=0.1 -dump  # inspect a generated suite binary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	out := flag.String("o", "", "write the assembled object file here")
	dump := flag.Bool("dump", false, "print sections, symbols and disassembly")
	gen := flag.String("gen", "", "generate this suite benchmark instead of reading a file")
	scale := flag.Float64("scale", 0.1, "workload scale for -gen")
	flag.Parse()

	var mods []*obj.Module
	switch {
	case *gen != "":
		s, ok := workload.ByName(*gen)
		if !ok {
			fail("cinnasm: unknown benchmark %q", *gen)
		}
		var err error
		mods, err = s.Build(*scale)
		check(err)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		check(err)
		var m *obj.Module
		if strings.HasSuffix(flag.Arg(0), ".cino") {
			m, err = obj.Decode(data)
		} else {
			m, err = asm.Assemble(string(data))
		}
		check(err)
		mods = []*obj.Module{m}
	default:
		fail("usage: cinnasm [-o out.cino] [-dump] <file.s|file.cino> | -gen <benchmark> -dump")
	}

	if *out != "" {
		data, err := obj.Encode(mods[0])
		check(err)
		check(os.WriteFile(*out, data, 0o644))
		fmt.Printf("wrote %s (%d bytes: %d code, %d data, %d symbols)\n",
			*out, len(data), len(mods[0].Code), len(mods[0].Data), len(mods[0].Syms))
	}
	if !*dump {
		return
	}

	p, err := obj.Load(mods, vm.RuntimeExterns())
	check(err)
	prog, err := cfg.Build(p)
	check(err)
	for _, m := range prog.Modules {
		l := m.Loaded
		fmt.Printf("module %s  base=%#x  code=%d bytes  data=%d bytes  executable=%v\n",
			m.Name(), l.Base, len(l.Image), len(l.DataImage), l.Executable)
		for _, f := range m.Funcs {
			fmt.Printf("  func %-16s [%#x, %#x)  blocks=%d loops=%d insts=%d",
				f.Name, f.Entry, f.End, len(f.Blocks), len(f.Loops), f.NumInsts())
			if f.Imprecise {
				fmt.Print("  IMPRECISE")
			}
			fmt.Println()
			for _, b := range f.Blocks {
				fmt.Printf("    block %d @ %#x:\n", b.ID, b.Start)
				for _, in := range b.Insts {
					fmt.Printf("      %#08x  %s\n", in.Addr, render(prog, in))
				}
			}
		}
	}
}

// render decorates direct control transfers with their symbolic targets.
func render(prog *cfg.Program, in *isa.Inst) string {
	s := in.String()
	if tgt, ok := in.IsDirectTarget(); ok {
		if name := prog.Obj.NameAt(tgt); name != "" && in.TargetSym == "" {
			s += "  ; " + name
		}
	}
	return s
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
