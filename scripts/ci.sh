#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
#
#   vet        static checks
#   build      every package compiles
#   race test  full suite under the race detector (the bench sweeps run
#              their (benchmark x framework) cells on a worker pool, so
#              this also exercises the parallel harness for races)
#   bench      one smoke iteration of every table/figure benchmark at a
#              reduced workload scale, plus one iteration of every
#              go-test benchmark in the tree (bench-rot guard)
#   docs       package-doc + documentation-suite gate (scripts/pkgdoc),
#              the generated CLI reference (docs/CLI.md must match the
#              flag registry byte for byte), the doc-example compile
#              gate (every fenced .cin block in the docs compiles),
#              one -stats CLI smoke run, and the probe-dispatch perf
#              gates (non-race; see internal/vm/obs_test.go and
#              translate_test.go): disabled path vs the
#              pre-observability loop, enabled path vs plain-counter
#              accounting, the translated VM tier vs the
#              interpreter on the probe-free hot-block workload, and
#              the action-inlining layer vs the no-inline translated
#              tier on an action-heavy workload
#              (internal/bench/inline_test.go)
#   governor   one reduced-scale run of the overhead-budget experiment
#              (experiments -exp=governor): the governor must bring
#              three action-heavy tools under 5% and 1% budgets
#   monitor    live-monitoring smoke (scripts/monitorsmoke): a looping
#              victim with -listen, scraped over real HTTP (/healthz,
#              /metrics, one SSE event), then killed cleanly
#   fleet      fleet-daemon smoke (scripts/fleetsmoke): cinnamond booted
#              on an ephemeral port, 8 sessions submitted over the real
#              POST /sessions API, /metrics scraped and the
#              cinnamon_fleet_* rollups asserted exactly equal to the
#              per-session sums, then SIGTERM and a clean drain; plus
#              the fleet perf gates (internal/bench/fleet_test.go): 32
#              live sessions must sustain millions of probe fires/sec
#              with the /metrics p99 under budget, and a session
#              joining a warm fleet (primed artifact cache) must start
#              >=5x faster than a cold one
#   conform    differential conformance sweep (cmd/conformance): 200
#              seeded generated (program, victim) pairs cross-checked
#              over all three backends and both execution tiers; any
#              divergence the oracle cannot classify as one of the
#              paper's legal divergences fails the gate. The checked-in
#              regression corpus replays inside `go test` above.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (CINNAMON_SCALE=0.1)"
CINNAMON_SCALE=0.1 go test -run '^$' -bench . -benchtime 1x .

echo "==> bench-rot smoke (all packages)"
CINNAMON_SCALE=0.1 go test -run '^$' -bench . -benchtime 1x ./... >/dev/null

echo "==> docs gate"
go run ./scripts/pkgdoc .

echo "==> CLI reference gate (docs/CLI.md vs flag registries)"
go test -run 'TestCLIDocCurrent|TestFlagTableComplete|TestDaemonFlagTableComplete' -count=1 ./cmd/cinnamon/

echo "==> doc-example compile gate (fenced .cin blocks)"
go test -run TestDocExamplesCompile -count=1 ./cinnamon/

echo "==> observability smoke (-stats -trace)"
go run ./cmd/cinnamon -backend=janus -target=victim:uaf_bug \
	-stats -trace=8 @useafterfree >/dev/null 2>&1

echo "==> disabled-path dispatch perf gate"
CINNAMON_PERF_GATE=1 go test -run TestObsDisabledDispatchOverhead -count=1 ./internal/vm/

echo "==> enabled-path dispatch perf gate"
CINNAMON_PERF_GATE=1 go test -run TestObsEnabledDispatchOverhead -count=1 ./internal/vm/

echo "==> translated-tier dispatch perf gate"
CINNAMON_PERF_GATE=1 go test -run TestTranslatedDispatchSpeedup -count=1 ./internal/vm/

echo "==> action-inlining perf gate"
CINNAMON_PERF_GATE=1 go test -run TestInlinedActionSpeedup -count=1 ./internal/bench/

echo "==> placement-IR perf gate"
CINNAMON_PERF_GATE=1 go test -run TestIROptDispatchSpeedup -count=1 ./internal/core/placement/

echo "==> governor bench smoke (budget sweep)"
go run ./cmd/experiments -exp=governor -benchmark=mcf -scale=0.2 >/dev/null

echo "==> live-monitoring smoke"
go run ./scripts/monitorsmoke

echo "==> fleet-daemon smoke"
go run ./scripts/fleetsmoke

echo "==> fleet snapshot-latency perf gate"
CINNAMON_PERF_GATE=1 go test -run TestFleetSnapshotLatencyGate -count=1 ./internal/bench/

echo "==> fleet warm-startup perf gate"
CINNAMON_PERF_GATE=1 go test -run TestFleetWarmStartupGate -count=1 ./internal/bench/

echo "==> differential conformance sweep (200 seeds)"
go run ./cmd/conformance -seeds 200 -budget 30s

echo "CI OK"
