// Package sem implements Cinnamon's semantic analysis: name resolution,
// type checking, command-nesting and trigger-point validation, and the
// static/dynamic classification of expressions that decides what is
// evaluated at instrumentation time versus materialized at run time.
package sem

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/token"
	"repro/internal/core/types"
)

// StmtCost is the cost-model price (cycle units) of one interpreted
// action statement; an action's cost estimate is StmtCost times its
// static statement count. Native tools use the same convention, so
// measured overhead isolates dispatch mechanisms (see DESIGN.md).
const StmtCost = 10

// Error is a semantic error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("cinnamon: %s: %s", e.Pos, e.Msg) }

// DynAttr names one dynamic attribute use: variable I, attribute memaddr.
type DynAttr struct {
	Var  string
	Attr string
}

// ActionInfo is the analysis result for one action.
type ActionInfo struct {
	// Canonical is the normalized trigger (before/after on blocks,
	// functions and loops canonicalize to entry/exit).
	Canonical ast.Trigger
	// TargetEType is the CFE type of the action's target variable.
	TargetEType ast.EType
	// Enclosing is the command whose variable the action targets.
	Enclosing *ast.Command
	// DynAttrs lists the dynamic attributes used in the body and
	// constraint, deduplicated and sorted; the backend materializes
	// exactly these per invocation.
	DynAttrs []DynAttr
	// WhereDynamic reports that the action constraint uses dynamic
	// attributes and must be compiled into a run-time guard. Static
	// constraints are evaluated once, at instrumentation time.
	WhereDynamic bool
	// Cost is the cost-model estimate of the action body (units).
	Cost uint64
	// Simple marks bodies eligible for clean-call inlining by dynamic
	// frameworks: at most two statements, no loops, no calls.
	Simple bool
	// Sample is the action's sampling stride (`sample N`): each
	// placement fires on every Nth hit. 0 or 1 means every hit.
	Sample uint64
}

// Info is the output of semantic analysis.
type Info struct {
	// Types records the type of every expression.
	Types map[ast.Expr]*types.Type
	// DynamicExprs marks field expressions that resolve to dynamic
	// attributes.
	DynamicExprs map[ast.Expr]bool
	// DeclTypes records the resolved type of every declaration.
	DeclTypes map[*ast.VarDecl]*types.Type
	// Globals lists global declarations in source order.
	Globals []*ast.VarDecl
	// Inits and Exits list the program's init/exit blocks in order.
	Inits []*ast.InitBlock
	Exits []*ast.ExitBlock
	// Commands lists the top-level commands in source order.
	Commands []*ast.Command
	// Actions records per-action analysis results.
	Actions map[*ast.Action]*ActionInfo
}

type symbol struct {
	name  string
	typ   *types.Type
	isCFE bool
	// cmd is the defining command for CFE variables.
	cmd *ast.Command
	// global marks tool-global variables (shared at run time; never
	// captured by value).
	global bool
}

type checker struct {
	info   *Info
	scopes []map[string]*symbol
}

// Check analyzes a parsed program.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Types:        make(map[ast.Expr]*types.Type),
			DynamicExprs: make(map[ast.Expr]bool),
			DeclTypes:    make(map[*ast.VarDecl]*types.Type),
			Actions:      make(map[*ast.Action]*ActionInfo),
		},
	}
	c.push()
	for _, item := range prog.Items {
		var err error
		switch it := item.(type) {
		case *ast.VarDecl:
			err = c.declare(it, true)
			if err == nil {
				c.info.Globals = append(c.info.Globals, it)
			}
		case *ast.InitBlock:
			c.info.Inits = append(c.info.Inits, it)
			err = c.checkStmtsStatic(it.Body)
		case *ast.ExitBlock:
			c.info.Exits = append(c.info.Exits, it)
			err = c.checkStmtsStatic(it.Body)
		case *ast.Command:
			c.info.Commands = append(c.info.Commands, it)
			err = c.checkCommand(it, nil)
		}
		if err != nil {
			return nil, err
		}
	}
	return c.info, nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(s *symbol, pos token.Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[s.name]; dup {
		return &Error{Pos: pos, Msg: fmt.Sprintf("%s redeclared in this scope", s.name)}
	}
	top[s.name] = s
	return nil
}

func (c *checker) lookup(name string) *symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) declare(d *ast.VarDecl, global bool) error {
	t, err := types.FromSpec(d.Type)
	if err != nil {
		return &Error{Pos: d.P, Msg: err.Error()}
	}
	c.info.DeclTypes[d] = t
	if t.Kind == types.File {
		if len(d.Args) != 1 {
			return &Error{Pos: d.P, Msg: "file declaration requires a name argument: file f(\"name\")"}
		}
		at, err := c.checkExprIn(d.Args[0], nil)
		if err != nil {
			return err
		}
		if !at.IsStringy() {
			return &Error{Pos: d.P, Msg: "file name must be a string"}
		}
	} else if len(d.Args) > 0 {
		return &Error{Pos: d.P, Msg: fmt.Sprintf("type %s takes no constructor arguments", t)}
	}
	if d.Init != nil {
		it, err := c.checkExprIn(d.Init, nil)
		if err != nil {
			return err
		}
		if !it.AssignableTo(t) {
			return &Error{Pos: d.P, Msg: fmt.Sprintf("cannot initialize %s (%s) with %s", d.Name, t, it)}
		}
	}
	return c.define(&symbol{name: d.Name, typ: t, global: global}, d.P)
}

// actionCtx carries the action being checked; a nil *actionCtx means a
// static context (analysis code, constraints, init/exit blocks) where
// dynamic attributes are illegal.
type actionCtx struct {
	action  *ast.Action
	info    *ActionInfo
	dynSeen map[DynAttr]bool
}

func (c *checker) checkCommand(cmd *ast.Command, parent *ast.Command) error {
	if parent != nil {
		pe := parent.EType
		if cmd.EType.Level() <= pe.Level() {
			return &Error{Pos: cmd.P, Msg: fmt.Sprintf(
				"command %s (%s) cannot nest inside %s (%s): commands must select strictly finer elements",
				cmd.Var, cmd.EType, parent.Var, pe)}
		}
	}
	c.push()
	defer c.pop()
	if err := c.define(&symbol{name: cmd.Var, typ: types.NewCFE(cmd.EType), isCFE: true, cmd: cmd}, cmd.P); err != nil {
		return err
	}
	if cmd.Where != nil {
		t, err := c.checkExprNoDyn(cmd.Where, "command constraint")
		if err != nil {
			return err
		}
		if t.Kind != types.Bool {
			return &Error{Pos: cmd.Where.Pos(), Msg: fmt.Sprintf("command constraint must be bool, got %s", t)}
		}
	}
	for _, item := range cmd.Body {
		switch it := item.(type) {
		case *ast.Command:
			if err := c.checkCommand(it, cmd); err != nil {
				return err
			}
		case *ast.Action:
			if err := c.checkAction(it); err != nil {
				return err
			}
		case ast.Stmt:
			// Analysis code: static context.
			if err := c.checkStmtsStatic([]ast.Stmt{it}); err != nil {
				return err
			}
		default:
			return &Error{Pos: item.Pos(), Msg: "invalid command item"}
		}
	}
	return nil
}

// canonicalTrigger normalizes an action trigger for a CFE type, or
// returns an error for invalid combinations.
func canonicalTrigger(tr ast.Trigger, e ast.EType, pos token.Pos) (ast.Trigger, error) {
	switch e {
	case ast.Inst:
		if tr == ast.Before || tr == ast.After {
			return tr, nil
		}
		return 0, &Error{Pos: pos, Msg: fmt.Sprintf("trigger %s is invalid for instructions (use before/after)", tr)}
	case ast.BasicBlock, ast.Func:
		switch tr {
		case ast.Entry, ast.Before:
			return ast.Entry, nil
		case ast.Exit, ast.After:
			return ast.Exit, nil
		}
		return 0, &Error{Pos: pos, Msg: fmt.Sprintf("trigger %s is invalid for %s (use entry/exit)", tr, e)}
	case ast.Loop:
		switch tr {
		case ast.Entry, ast.Before:
			return ast.Entry, nil
		case ast.Exit, ast.After:
			return ast.Exit, nil
		case ast.Iter:
			return ast.Iter, nil
		}
		return 0, &Error{Pos: pos, Msg: fmt.Sprintf("trigger %s is invalid for loops", tr)}
	case ast.Module:
		return 0, &Error{Pos: pos, Msg: "actions cannot target modules; use init/exit blocks"}
	}
	return 0, &Error{Pos: pos, Msg: "invalid trigger"}
}

func (c *checker) checkAction(a *ast.Action) error {
	sym := c.lookup(a.Target)
	if sym == nil || !sym.isCFE {
		return &Error{Pos: a.P, Msg: fmt.Sprintf("action target %q is not a control-flow element variable in scope", a.Target)}
	}
	etype := sym.typ.EType
	canon, err := canonicalTrigger(a.Trigger, etype, a.P)
	if err != nil {
		return err
	}
	ai := &ActionInfo{
		Canonical:   canon,
		TargetEType: etype,
		Enclosing:   sym.cmd,
		Sample:      uint64(a.Sample),
	}
	c.info.Actions[a] = ai
	actx := &actionCtx{action: a, info: ai, dynSeen: make(map[DynAttr]bool)}
	// Constraint: may be static or dynamic.
	if a.Where != nil {
		t, err := c.checkExprIn(a.Where, actx)
		if err != nil {
			return err
		}
		if t.Kind != types.Bool {
			return &Error{Pos: a.Where.Pos(), Msg: fmt.Sprintf("action constraint must be bool, got %s", t)}
		}
		ai.WhereDynamic = c.exprIsDynamic(a.Where)
	}
	c.push()
	err = c.checkStmtsIn(a.Body, actx)
	c.pop()
	if err != nil {
		return err
	}
	// Finalize dynamic attribute list (sorted for determinism).
	for da := range actx.dynSeen {
		ai.DynAttrs = append(ai.DynAttrs, da)
	}
	sort.Slice(ai.DynAttrs, func(i, j int) bool {
		if ai.DynAttrs[i].Var != ai.DynAttrs[j].Var {
			return ai.DynAttrs[i].Var < ai.DynAttrs[j].Var
		}
		return ai.DynAttrs[i].Attr < ai.DynAttrs[j].Attr
	})
	ai.Cost = uint64(ast.CountStmts(a.Body)) * StmtCost
	if ai.WhereDynamic {
		// A dynamic constraint compiles into a run-time guard executed
		// on every invocation; charge it like a body statement.
		ai.Cost += StmtCost
	}
	ai.Simple = isSimpleBody(a.Body)
	return nil
}

func isSimpleBody(body []ast.Stmt) bool {
	if len(body) > 2 {
		return false
	}
	simple := true
	ast.WalkStmts(body, func(s ast.Stmt) {
		switch s.(type) {
		case *ast.ForStmt, *ast.IfStmt:
			simple = false
		}
	}, func(e ast.Expr) {
		if _, ok := e.(*ast.CallExpr); ok {
			simple = false
		}
	})
	return simple
}

func (c *checker) exprIsDynamic(e ast.Expr) bool {
	dyn := false
	ast.Walk(e, func(x ast.Expr) {
		if c.info.DynamicExprs[x] {
			dyn = true
		}
	})
	return dyn
}

// checkStmtsStatic checks statements in a static context (analysis code,
// init/exit blocks): dynamic attributes are rejected.
func (c *checker) checkStmtsStatic(stmts []ast.Stmt) error {
	return c.checkStmtsIn(stmts, nil)
}

func (c *checker) checkStmtsIn(stmts []ast.Stmt, actx *actionCtx) error {
	for _, s := range stmts {
		if err := c.checkStmt(s, actx); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s ast.Stmt, actx *actionCtx) error {
	switch st := s.(type) {
	case *ast.DeclStmt:
		if c.info.DeclTypes[st.Decl] == nil {
			if err := c.declareLocal(st.Decl, actx); err != nil {
				return err
			}
		}
		return nil
	case *ast.AssignStmt:
		lt, err := c.checkLValue(st.LHS, actx)
		if err != nil {
			return err
		}
		rt, err := c.checkExprIn(st.RHS, actx)
		if err != nil {
			return err
		}
		if !rt.AssignableTo(lt) {
			return &Error{Pos: st.P, Msg: fmt.Sprintf("cannot assign %s to %s", rt, lt)}
		}
		return nil
	case *ast.ExprStmt:
		_, err := c.checkExprIn(st.X, actx)
		return err
	case *ast.IfStmt:
		t, err := c.checkExprIn(st.Cond, actx)
		if err != nil {
			return err
		}
		if t.Kind != types.Bool {
			return &Error{Pos: st.Cond.Pos(), Msg: fmt.Sprintf("if condition must be bool, got %s", t)}
		}
		c.push()
		err = c.checkStmtsIn(st.Then, actx)
		c.pop()
		if err != nil {
			return err
		}
		c.push()
		err = c.checkStmtsIn(st.Else, actx)
		c.pop()
		return err
	case *ast.ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init, actx); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			t, err := c.checkExprIn(st.Cond, actx)
			if err != nil {
				return err
			}
			if t.Kind != types.Bool {
				return &Error{Pos: st.Cond.Pos(), Msg: fmt.Sprintf("for condition must be bool, got %s", t)}
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post, actx); err != nil {
				return err
			}
		}
		return c.checkStmtsIn(st.Body, actx)
	}
	return &Error{Pos: s.Pos(), Msg: "invalid statement"}
}

func (c *checker) declareLocal(d *ast.VarDecl, actx *actionCtx) error {
	t, err := types.FromSpec(d.Type)
	if err != nil {
		return &Error{Pos: d.P, Msg: err.Error()}
	}
	if t.Kind == types.File {
		return &Error{Pos: d.P, Msg: "files may only be declared at global scope"}
	}
	if len(d.Args) > 0 {
		return &Error{Pos: d.P, Msg: fmt.Sprintf("type %s takes no constructor arguments", t)}
	}
	c.info.DeclTypes[d] = t
	if d.Init != nil {
		it, err := c.checkExprIn(d.Init, actx)
		if err != nil {
			return err
		}
		if !it.AssignableTo(t) {
			return &Error{Pos: d.P, Msg: fmt.Sprintf("cannot initialize %s (%s) with %s", d.Name, t, it)}
		}
	}
	return c.define(&symbol{name: d.Name, typ: t}, d.P)
}

func (c *checker) checkLValue(e ast.Expr, actx *actionCtx) (*types.Type, error) {
	switch lv := e.(type) {
	case *ast.Ident:
		sym := c.lookup(lv.Name)
		if sym == nil {
			return nil, &Error{Pos: lv.P, Msg: fmt.Sprintf("undefined: %s", lv.Name)}
		}
		if sym.isCFE {
			return nil, &Error{Pos: lv.P, Msg: fmt.Sprintf("cannot assign to control-flow element %s", lv.Name)}
		}
		if sym.typ.Kind == types.File {
			return nil, &Error{Pos: lv.P, Msg: "cannot assign to a file"}
		}
		c.info.Types[e] = sym.typ
		return sym.typ, nil
	case *ast.IndexExpr:
		return c.checkIndex(lv, actx)
	case *ast.FieldExpr:
		return nil, &Error{Pos: lv.P, Msg: "control-flow element attributes are read-only (Cinnamon performs passive monitoring)"}
	}
	return nil, &Error{Pos: e.Pos(), Msg: "invalid assignment target"}
}

// checkExprNoDyn checks an expression in a static context, rejecting
// dynamic attributes with a context-specific message.
func (c *checker) checkExprNoDyn(e ast.Expr, what string) (*types.Type, error) {
	t, err := c.checkExprIn(e, nil)
	if err != nil {
		return nil, err
	}
	if c.exprIsDynamic(e) {
		return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf(
			"%s must be evaluable at instrumentation time; dynamic attributes are only available inside actions", what)}
	}
	return t, nil
}

func (c *checker) checkExprIn(e ast.Expr, actx *actionCtx) (*types.Type, error) {
	t, err := c.exprType(e, actx)
	if err != nil {
		return nil, err
	}
	c.info.Types[e] = t
	return t, nil
}

func (c *checker) exprType(e ast.Expr, actx *actionCtx) (*types.Type, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return types.Basic(types.Int), nil
	case *ast.StringLit:
		return types.Basic(types.String), nil
	case *ast.CharLit:
		return types.Basic(types.Char), nil
	case *ast.BoolLit:
		return types.Basic(types.Bool), nil
	case *ast.NullLit:
		return types.Basic(types.Null), nil
	case *ast.OpcodeLit:
		return types.Basic(types.Opcode), nil
	case *ast.Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("undefined: %s", x.Name)}
		}
		return sym.typ, nil
	case *ast.FieldExpr:
		return c.checkField(x, actx)
	case *ast.IndexExpr:
		return c.checkIndex(x, actx)
	case *ast.CallExpr:
		return c.checkCall(x, actx)
	case *ast.IsTypeExpr:
		t, err := c.checkExprIn(x.X, actx)
		if err != nil {
			return nil, err
		}
		if t.Kind != types.Operand {
			return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("IsType requires an instruction operand, got %s", t)}
		}
		return types.Basic(types.Bool), nil
	case *ast.UnaryExpr:
		t, err := c.checkExprIn(x.X, actx)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.NOT:
			if t.Kind != types.Bool {
				return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("operator ! requires bool, got %s", t)}
			}
			return types.Basic(types.Bool), nil
		case token.MINUS:
			if !t.IsNumeric() {
				return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("operator - requires a number, got %s", t)}
			}
			return types.Basic(types.Int), nil
		}
		return nil, &Error{Pos: x.P, Msg: "invalid unary operator"}
	case *ast.BinaryExpr:
		return c.checkBinary(x, actx)
	}
	return nil, &Error{Pos: e.Pos(), Msg: "invalid expression"}
}

func (c *checker) checkField(x *ast.FieldExpr, actx *actionCtx) (*types.Type, error) {
	base, err := c.checkExprIn(x.X, actx)
	if err != nil {
		return nil, err
	}
	if base.Kind != types.CFE {
		return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("%s has no attributes (not a control-flow element)", base)}
	}
	attr, ok := LookupAttr(base.EType, x.Name)
	if !ok {
		return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("%s has no attribute %q", base.EType, x.Name)}
	}
	if attr.Dynamic {
		if actx == nil {
			return nil, &Error{Pos: x.P, Msg: fmt.Sprintf(
				"attribute %s.%s belongs to the dynamic context and is only available inside actions", base.EType, attr.Name)}
		}
		if attr.AfterOnly && actx.info.Canonical != ast.After {
			return nil, &Error{Pos: x.P, Msg: fmt.Sprintf(
				"attribute %s is only available in after-actions (the call must have returned)", attr.Name)}
		}
		c.info.DynamicExprs[x] = true
		if id, ok := x.X.(*ast.Ident); ok {
			actx.dynSeen[DynAttr{Var: id.Name, Attr: attr.Name}] = true
		}
	}
	return attr.Type, nil
}

func (c *checker) checkIndex(x *ast.IndexExpr, actx *actionCtx) (*types.Type, error) {
	base, err := c.checkExprIn(x.X, actx)
	if err != nil {
		return nil, err
	}
	idx, err := c.checkExprIn(x.Index, actx)
	if err != nil {
		return nil, err
	}
	switch base.Kind {
	case types.Dict:
		if !idx.AssignableTo(base.Key) {
			return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("dict key must be %s, got %s", base.Key, idx)}
		}
		return base.Elem, nil
	case types.Vector, types.Array:
		if !idx.IsNumeric() {
			return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("index must be a number, got %s", idx)}
		}
		return base.Elem, nil
	}
	return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("%s is not indexable", base)}
}

func (c *checker) checkCall(x *ast.CallExpr, actx *actionCtx) (*types.Type, error) {
	switch fun := x.Fun.(type) {
	case *ast.Ident:
		return c.checkBuiltin(x, fun.Name, actx)
	case *ast.FieldExpr:
		recv, err := c.checkExprIn(fun.X, actx)
		if err != nil {
			return nil, err
		}
		return c.checkMethod(x, recv, fun.Name, actx)
	}
	return nil, &Error{Pos: x.P, Msg: "invalid call"}
}

func (c *checker) checkBuiltin(x *ast.CallExpr, name string, actx *actionCtx) (*types.Type, error) {
	switch name {
	case "print":
		if len(x.Args) == 0 {
			return nil, &Error{Pos: x.P, Msg: "print requires at least one argument"}
		}
		for _, a := range x.Args {
			if _, err := c.checkExprIn(a, actx); err != nil {
				return nil, err
			}
		}
		return types.Basic(types.Void), nil
	case "writeToFile":
		if len(x.Args) != 2 {
			return nil, &Error{Pos: x.P, Msg: "writeToFile requires (file, value)"}
		}
		ft, err := c.checkExprIn(x.Args[0], actx)
		if err != nil {
			return nil, err
		}
		if ft.Kind != types.File {
			return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("writeToFile first argument must be a file, got %s", ft)}
		}
		if _, err := c.checkExprIn(x.Args[1], actx); err != nil {
			return nil, err
		}
		return types.Basic(types.Void), nil
	}
	return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("unknown function %q", name)}
}

func (c *checker) checkMethod(x *ast.CallExpr, recv *types.Type, name string, actx *actionCtx) (*types.Type, error) {
	argTypes := make([]*types.Type, len(x.Args))
	for i, a := range x.Args {
		t, err := c.checkExprIn(a, actx)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	bad := func(format string, args ...any) (*types.Type, error) {
		return nil, &Error{Pos: x.P, Msg: fmt.Sprintf(format, args...)}
	}
	switch recv.Kind {
	case types.Vector:
		switch name {
		case "add":
			if len(x.Args) != 1 || !argTypes[0].AssignableTo(recv.Elem) {
				return bad("vector.add requires one %s argument", recv.Elem)
			}
			return types.Basic(types.Void), nil
		case "has":
			if len(x.Args) != 1 || !argTypes[0].AssignableTo(recv.Elem) {
				return bad("vector.has requires one %s argument", recv.Elem)
			}
			return types.Basic(types.Bool), nil
		case "size":
			if len(x.Args) != 0 {
				return bad("vector.size takes no arguments")
			}
			return types.Basic(types.Int), nil
		}
		return bad("vector has no method %q", name)
	case types.Dict:
		switch name {
		case "has":
			if len(x.Args) != 1 || !argTypes[0].AssignableTo(recv.Key) {
				return bad("dict.has requires one %s argument", recv.Key)
			}
			return types.Basic(types.Bool), nil
		case "size":
			if len(x.Args) != 0 {
				return bad("dict.size takes no arguments")
			}
			return types.Basic(types.Int), nil
		}
		return bad("dict has no method %q", name)
	case types.File:
		switch name {
		case "getline":
			if len(x.Args) != 0 {
				return bad("file.getline takes no arguments")
			}
			return types.Basic(types.Line), nil
		}
		return bad("file has no method %q", name)
	case types.CFE:
		// A call through a CFE field would land here; attributes are not
		// methods.
		return bad("%s attributes cannot be called", recv)
	}
	return bad("%s has no methods", recv)
}

func (c *checker) checkBinary(x *ast.BinaryExpr, actx *actionCtx) (*types.Type, error) {
	lt, err := c.checkExprIn(x.X, actx)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExprIn(x.Y, actx)
	if err != nil {
		return nil, err
	}
	bad := func() (*types.Type, error) {
		return nil, &Error{Pos: x.P, Msg: fmt.Sprintf("invalid operation: %s %s %s", lt, x.Op, rt)}
	}
	switch x.Op {
	case token.LAND, token.LOR:
		if lt.Kind != types.Bool || rt.Kind != types.Bool {
			return bad()
		}
		return types.Basic(types.Bool), nil
	case token.EQ, token.NEQ:
		if !lt.ComparableWith(rt) {
			return bad()
		}
		return types.Basic(types.Bool), nil
	case token.LT, token.LE, token.GT, token.GE:
		if !lt.OrderedWith(rt) {
			return bad()
		}
		return types.Basic(types.Bool), nil
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.AMP, token.PIPE, token.CARET, token.SHL, token.SHR:
		lnum := lt.IsNumeric() || lt.Kind == types.Line
		rnum := rt.IsNumeric() || rt.Kind == types.Line
		if !lnum || !rnum {
			return bad()
		}
		// Preserve addr-ness through arithmetic so pointer expressions
		// keep their type; otherwise result is int.
		if lt.Kind == types.Addr || rt.Kind == types.Addr {
			return types.Basic(types.Addr), nil
		}
		return types.Basic(types.Int), nil
	}
	return bad()
}

// DescribeDynAttr renders a dynamic attribute for diagnostics and
// generated-code comments.
func DescribeDynAttr(d DynAttr) string {
	return strings.Join([]string{d.Var, d.Attr}, ".")
}
