package conformance

import "testing"

// FuzzDifferential is the native-fuzzing entry to the harness: the
// fuzzer explores the seed space and any seed whose generated pair
// produces an illegal divergence (or a generator invariant violation)
// is a crasher. Deterministic generation means every crasher input
// reproduces with `go test -run FuzzDifferential/<id>`.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		pr, err := CheckSeed(seed)
		if err != nil {
			t.Fatalf("seed %d: generator invariant violated: %v", seed, err)
		}
		if ill := pr.Illegal(); len(ill) > 0 {
			t.Fatalf("seed %d: illegal divergence:\n%s", seed,
				DescribeFailure(pr, pr.Program.Source))
		}
	})
}
