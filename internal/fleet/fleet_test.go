package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
)

// waitAll runs the scheduler's sessions to completion with a test bound.
func waitAll(t *testing.T, s *Scheduler, d time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("sessions did not settle: %v", err)
	}
}

// drain shuts a test scheduler down so its workers never leak.
func drain(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}

// A batch of sessions runs to done over a pool smaller than the batch,
// every session's counters land in its own collector (no cross-session
// bleed: identical jobs report identical fires, untracked stays zero),
// and probe IDs never collide across the per-session collectors.
func TestSchedulerRunsSessionsIsolated(t *testing.T) {
	s := NewScheduler(Config{Workers: 3, Interval: 5 * time.Millisecond})
	defer drain(t, s)
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := s.Submit(JobSpec{Tool: "instcount_basic", Victim: "spin", Loop: 50}); err != nil {
			t.Fatal(err)
		}
	}
	waitAll(t, s, 30*time.Second)

	sessions := s.Fleet().Sessions()
	if len(sessions) != n {
		t.Fatalf("registered %d sessions, want %d", len(sessions), n)
	}
	var wantFires uint64
	for i, sess := range sessions {
		info := sess.Info()
		if info.State != monitor.SessionDone {
			t.Fatalf("session %s: state %s (%s), want done", info.Session, info.State, info.Error)
		}
		if info.Fires == 0 || info.Cycles == 0 {
			t.Fatalf("session %s: fires=%d cycles=%d, want activity", info.Session, info.Fires, info.Cycles)
		}
		if info.Attempts != 1 {
			t.Fatalf("session %s: %d attempts, want 1", info.Session, info.Attempts)
		}
		// Identical jobs on isolated collectors must agree exactly; any
		// cross-session bleed would show up as drift or untracked fires.
		snap := sess.Collector().Snapshot(info.Backend)
		if snap.UntrackedFires != 0 {
			t.Fatalf("session %s: %d untracked fires (cross-session bleed?)", info.Session, snap.UntrackedFires)
		}
		if i == 0 {
			wantFires = info.Fires
		} else if info.Fires != wantFires {
			t.Fatalf("session %s: %d fires, session s1 had %d (identical jobs must match)", info.Session, info.Fires, wantFires)
		}
	}
}

// A failing session (out of fuel) restarts up to its bound, then
// settles failed with the attempt count visible — and the restart
// attempts replay the already-built artifacts instead of rebuilding:
// the tool and victim are built once at submit, and every attempt
// after the first serves its instrumentation build from the template
// cache.
func TestSchedulerRestartOnFailure(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, Interval: 5 * time.Millisecond})
	defer drain(t, s)
	sess, err := s.Submit(JobSpec{Tool: "instcount_basic", Victim: "spin", Loop: 1000, Fuel: 50, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, s, 30*time.Second)
	info := sess.Info()
	if info.State != monitor.SessionFailed {
		t.Fatalf("state %s, want failed", info.State)
	}
	if info.Attempts != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 restarts)", info.Attempts)
	}
	if info.Error == "" {
		t.Fatal("failed session reports no error")
	}
	build := sess.Collector().Snapshot(info.Backend).Build
	if build.ArtifactHits < 2 {
		t.Fatalf("restart attempts recorded %d artifact hits, want >= 2 (attempts 2 and 3 must replay the cached template)", build.ArtifactHits)
	}
}

// With the shared scheduler cache disabled, a restarting session still
// reuses its own artifacts across attempts: the per-task private cache
// keeps restart storms from paying the full build on every attempt.
func TestRestartReusesArtifactsWithoutSharedCache(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, Interval: 5 * time.Millisecond, NoArtifactCache: true})
	defer drain(t, s)
	if s.Artifacts() != nil {
		t.Fatal("NoArtifactCache scheduler still exposes a shared cache")
	}
	sess, err := s.Submit(JobSpec{Tool: "instcount_basic", Victim: "spin", Loop: 1000, Fuel: 50, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, s, 30*time.Second)
	info := sess.Info()
	if info.Attempts != 3 {
		t.Fatalf("%d attempts, want 3", info.Attempts)
	}
	build := sess.Collector().Snapshot(info.Backend).Build
	if build.ArtifactHits < 2 {
		t.Fatalf("restart attempts recorded %d artifact hits, want >= 2 from the per-task cache", build.ArtifactHits)
	}
}

// A governed job carries its overhead budget into the session: the
// governor is attached and visible on the registry.
func TestSchedulerGovernedSession(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, Interval: 5 * time.Millisecond})
	defer drain(t, s)
	sess, err := s.Submit(JobSpec{Tool: "instcount_basic", Victim: "spin", Loop: 2000, Budget: "5%"})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, s, 30*time.Second)
	if st := sess.State(); st != monitor.SessionDone {
		t.Fatalf("state %s, want done", st)
	}
	g := sess.Governor()
	if g == nil {
		t.Fatal("no governor attached")
	}
	if st := g.State(); st.Budget != 0.05 {
		t.Fatalf("governor budget %v, want 0.05", st.Budget)
	}
}

// Drain stops admission, cancels queued sessions immediately, and
// cancels still-running sessions once the deadline passes — via the
// VM's cooperative stop, so the long loop ends mid-flight.
func TestSchedulerDrainCancels(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, Interval: 5 * time.Millisecond})
	// One long runner hogs the only worker; the rest stay queued.
	var all []*monitor.FleetSession
	for i := 0; i < 3; i++ {
		sess, err := s.Submit(JobSpec{Tool: "instcount_basic", Victim: "spin", Loop: 100_000_000})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, sess)
	}
	// Let the first session actually start.
	start := time.Now()
	for all[0].State() != monitor.SessionRunning {
		if time.Since(start) > 5*time.Second {
			t.Fatal("first session never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline (the running loop outlives 50ms)", err)
	}
	if s.Accepting() {
		t.Fatal("still accepting after drain")
	}
	if _, err := s.Submit(JobSpec{Tool: "instcount_basic", Victim: "spin"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	for i, sess := range all {
		if st := sess.State(); st != monitor.SessionCanceled {
			t.Fatalf("session %d: state %s, want canceled", i+1, st)
		}
	}
}

// Bad jobs are rejected at admission with a useful error, not on a
// worker.
func TestSubmitValidation(t *testing.T) {
	s := NewScheduler(Config{Workers: 1})
	defer drain(t, s)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no tool", JobSpec{Victim: "spin"}},
		{"both tools", JobSpec{Tool: "instcount_basic", ToolSrc: "x", Victim: "spin"}},
		{"unknown tool", JobSpec{Tool: "nope", Victim: "spin"}},
		{"unknown victim", JobSpec{Tool: "instcount_basic", Victim: "nope"}},
		{"non-loopable victim", JobSpec{Tool: "instcount_basic", Victim: "stack_smash"}},
		{"unknown backend", JobSpec{Tool: "instcount_basic", Victim: "spin", Backend: "qemu"}},
		{"bad budget", JobSpec{Tool: "instcount_basic", Victim: "spin", Budget: "lots"}},
		{"bad tool source", JobSpec{ToolSrc: "this is not cinnamon", Victim: "spin"}},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.spec); err == nil {
			t.Errorf("%s: admitted, want rejection", c.name)
		}
	}
	if got := len(s.Fleet().Sessions()); got != 0 {
		t.Fatalf("%d sessions registered by rejected jobs", got)
	}
}

// SubmitJSON rejects unknown fields (catching typo'd job bodies) and
// returns the admitted session ID.
func TestSubmitJSON(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, Interval: 5 * time.Millisecond})
	defer drain(t, s)
	resp, err := s.SubmitJSON([]byte(`{"tool":"instcount_basic","victim":"spin","loop":50}`))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := resp.(map[string]string)
	if !ok || m["session"] != "s1" {
		t.Fatalf("response %v", resp)
	}
	if _, err := s.SubmitJSON([]byte(`{"tool":"instcount_basic","victim":"spin","lop":3}`)); err == nil {
		t.Fatal("unknown field admitted")
	}
	waitAll(t, s, 30*time.Second)
}

// Manifests parse in both accepted shapes.
func TestParseManifest(t *testing.T) {
	array := []byte(`[{"tool":"a","victim":"spin"},{"tool":"b","victim":"loopy"}]`)
	doc := []byte(`{"sessions":[{"tool":"a","victim":"spin"}]}`)
	specs, err := ParseManifest(array)
	if err != nil || len(specs) != 2 || specs[1].Tool != "b" {
		t.Fatalf("array manifest: %v %v", specs, err)
	}
	specs, err = ParseManifest(doc)
	if err != nil || len(specs) != 1 {
		t.Fatalf("document manifest: %v %v", specs, err)
	}
	if _, err := ParseManifest([]byte(`"nope"`)); err == nil {
		t.Fatal("junk manifest parsed")
	}
}

// The many-session soak: dozens of concurrent sessions churning while
// the fleet exposition is scraped mid-flight. Every scrape must be
// internally consistent (rollup == sum of per-session totals) and the
// rollup monotone; per-session untracked counters must stay zero (the
// generation-tagged probe IDs keep foreign fires out). The sessions
// share the scheduler's artifact cache, so identical jobs replay one
// cached tool/victim/template concurrently — identical fire counts
// per job shape prove the shared artifacts carry no mutable state
// across sessions. Run with -race this is the cross-session isolation
// gate of the PR.
func TestManySessionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	s := NewScheduler(Config{Workers: 8, Interval: 5 * time.Millisecond})
	defer drain(t, s)
	const n = 32
	tools := []string{"instcount_basic", "opcodemix", "loopcoverage"}
	for i := 0; i < n; i++ {
		spec := JobSpec{Tool: tools[i%len(tools)], Victim: "spin", Loop: 400}
		if i%4 == 3 {
			spec.Budget = "5%"
		}
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}

	// Scrape while sessions churn.
	scrapeCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scrapeErr := make(chan error, 1)
	go func() {
		defer close(scrapeErr)
		var prev float64
		for scrapeCtx.Err() == nil {
			var b strings.Builder
			monitor.WriteFleetMetrics(&b, s.Fleet())
			series := monitor.ParseSamples(b.String())
			var sum float64
			for _, sess := range s.Fleet().Sessions() {
				l := sess.Labels()
				sum += series[fmt.Sprintf(`cinnamon_session_fires_total{session="%s",tool="%s",victim="%s",backend="%s"}`,
					l.Session, l.Tool, l.Victim, l.Backend)]
			}
			got := series["cinnamon_fleet_fires_total"]
			if got != sum {
				scrapeErr <- fmt.Errorf("mid-churn rollup %v != sum %v", got, sum)
				return
			}
			if got < prev {
				scrapeErr <- fmt.Errorf("rollup regressed %v -> %v", prev, got)
				return
			}
			prev = got
		}
	}()

	waitAll(t, s, 120*time.Second)
	cancel()
	if err := <-scrapeErr; err != nil {
		t.Fatal(err)
	}

	// Identical job shapes (tool × governed) ran from shared cached
	// artifacts; any cross-session mutation through a shared template
	// would skew a session's counters away from its twins'.
	fires := map[string]uint64{}
	for i, sess := range s.Fleet().Sessions() {
		info := sess.Info()
		if info.State != monitor.SessionDone {
			t.Fatalf("session %s: %s (%s)", info.Session, info.State, info.Error)
		}
		snap := sess.Collector().Snapshot(info.Backend)
		if snap.UntrackedFires != 0 {
			t.Fatalf("session %s: %d untracked fires — cross-session probe-ID bleed", info.Session, snap.UntrackedFires)
		}
		shape := fmt.Sprintf("%s/governed=%v", tools[i%len(tools)], i%4 == 3)
		if want, seen := fires[shape]; seen && info.Fires != want {
			t.Fatalf("session %s (%s): %d fires, twin had %d — shared artifacts leaked state across sessions",
				info.Session, shape, info.Fires, want)
		}
		fires[shape] = info.Fires
	}
	if st := s.Artifacts().Stats(); st.Hits() == 0 {
		t.Fatal("soak recorded zero artifact-cache hits; the shared cache was never exercised")
	}
}
