package lexer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, err := Tokenize(`inst I where (I.opcode == Load) { before I { x = x + 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{
		token.INST, token.IDENT, token.WHERE, token.LPAREN, token.IDENT,
		token.DOT, token.IDENT, token.EQ, token.OPCODE, token.RPAREN,
		token.LBRACE, token.BEFORE, token.IDENT, token.LBRACE,
		token.IDENT, token.ASSIGN, token.IDENT, token.PLUS, token.INT,
		token.SEMICOLON, token.RBRACE, token.RBRACE, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := `= == ! != < <= > >= << >> && || & | ^ + - * / % ( ) { } [ ] , ; .`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{
		token.ASSIGN, token.EQ, token.NOT, token.NEQ, token.LT, token.LE,
		token.GT, token.GE, token.SHL, token.SHR, token.LAND, token.LOR,
		token.AMP, token.PIPE, token.CARET, token.PLUS, token.MINUS,
		token.STAR, token.SLASH, token.PERCENT, token.LPAREN, token.RPAREN,
		token.LBRACE, token.RBRACE, token.LBRACKET, token.RBRACKET,
		token.COMMA, token.SEMICOLON, token.DOT, token.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLiterals(t *testing.T) {
	toks, err := Tokenize(`42 0x1F "hi\n\"q\"\t\\" 'a' '\n' '\\' true false NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Lit != "42" || toks[1].Lit != "0x1F" {
		t.Errorf("ints = %q, %q", toks[0].Lit, toks[1].Lit)
	}
	if toks[2].Lit != "hi\n\"q\"\t\\" {
		t.Errorf("string = %q", toks[2].Lit)
	}
	if toks[3].Lit != "a" || toks[4].Lit != "\n" || toks[5].Lit != "\\" {
		t.Errorf("chars = %q %q %q", toks[3].Lit, toks[4].Lit, toks[5].Lit)
	}
	if toks[6].Kind != token.TRUE || toks[7].Kind != token.FALSE || toks[8].Kind != token.NULL {
		t.Error("keyword literals wrong")
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("x // line comment\n/* block\ncomment */ y /* unterminated ok")
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(toks)
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestOpcodesAndKeywords(t *testing.T) {
	toks, err := Tokenize("Load Call GetPtr loadx inst basicblock dict vector IsType mem reg const")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.OPCODE || toks[0].Lit != "Load" {
		t.Errorf("Load = %v", toks[0])
	}
	if toks[1].Kind != token.OPCODE || toks[2].Kind != token.OPCODE {
		t.Error("opcode keywords wrong")
	}
	if toks[3].Kind != token.IDENT {
		t.Errorf("loadx should be IDENT, got %v", toks[3])
	}
	wantKinds := []token.Kind{token.INST, token.BASICBLOCK, token.TDICT, token.TVECTOR,
		token.ISTYPE, token.KMEM, token.KREG, token.KCONST}
	for i, k := range wantKinds {
		if toks[4+i].Kind != k {
			t.Errorf("token %d = %v, want %v", 4+i, toks[4+i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		"\"newline\nin string\"",
		`'x`,
		`'\q'`,
		`@`,
		"`",
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: no error", src)
		}
	}
}

// TestQuickNeverPanics feeds random byte soup to the lexer: it must
// always return (tokens or an error), never panic or loop.
func TestQuickNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Tokenize(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Also printable-ASCII soup, which reaches deeper paths.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		var b strings.Builder
		for n := 0; n < 64; n++ {
			b.WriteByte(byte(32 + r.Intn(95)))
		}
		_, _ = Tokenize(b.String())
	}
}

func TestTokenStringsAndPrecedence(t *testing.T) {
	if token.LOR.Precedence() >= token.LAND.Precedence() {
		t.Error("|| must bind looser than &&")
	}
	if token.PLUS.Precedence() >= token.STAR.Precedence() {
		t.Error("+ must bind looser than *")
	}
	if token.EQ.Precedence() >= token.LT.Precedence() {
		t.Error("== must bind looser than <")
	}
	if token.IDENT.Precedence() != 0 {
		t.Error("non-operator has precedence")
	}
	tok := token.Token{Kind: token.IDENT, Lit: "x"}
	if tok.String() != `identifier("x")` {
		t.Errorf("token string = %v", tok)
	}
	if !token.INST.IsCFEKeyword() || token.IDENT.IsCFEKeyword() {
		t.Error("IsCFEKeyword wrong")
	}
	if !token.ITER.IsTriggerKeyword() || token.IF.IsTriggerKeyword() {
		t.Error("IsTriggerKeyword wrong")
	}
	if !token.TDICT.IsTypeKeyword() || token.INST.IsTypeKeyword() {
		t.Error("IsTypeKeyword wrong")
	}
}
