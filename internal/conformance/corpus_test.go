package conformance

import "testing"

// TestRegressionCorpus replays every checked-in .cinpair entry through
// the full differential matrix. Any illegal divergence fails the build:
// this is how a once-found conformance bug stays fixed.
func TestRegressionCorpus(t *testing.T) {
	pairs, err := CorpusPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("regression corpus is empty")
	}
	for _, p := range pairs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pr, err := ReplayPair(p)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			for _, d := range pr.Illegal() {
				t.Errorf("illegal divergence: %s", d)
			}
		})
	}
}
