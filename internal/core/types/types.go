// Package types defines the Cinnamon type system: primitive numeric types
// (int, uint64, char, addr), bool, strings and file lines, the composite
// dict/vector/array types, files, and the instrumentation-specific opcode
// and operand types.
//
// Numeric types interconvert freely (the language is deliberately loose,
// like the paper's examples, which assign I.arg1 to both int and addr
// variables); line values coerce to numbers when used numerically, which
// is what lets Figure 9 read function addresses back from a file.
package types

import (
	"fmt"

	"repro/internal/core/ast"
	"repro/internal/core/token"
)

// Kind classifies a type.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Int
	UInt64
	Char
	Bool
	Addr
	String
	// Line is the type of file lines (string-like, numerically
	// coercible, comparable to NULL for end-of-file).
	Line
	// Opcode is the type of opcode literals and I.opcode.
	Opcode
	// Operand is the type of instruction operand handles (I.op1 ...),
	// testable with IsType.
	Operand
	// Null is the type of the NULL literal.
	Null
	// Void is the type of calls evaluated for effect.
	Void
	Dict
	Vector
	Array
	File
	// CFE is the type of control-flow-element variables bound by
	// commands.
	CFE
)

// Type is a Cinnamon type.
type Type struct {
	Kind Kind
	// Key and Elem parameterize Dict (key/value), Vector and Array
	// (element).
	Key, Elem *Type
	// Len is the static array length.
	Len int
	// EType is the control-flow-element kind for CFE types.
	EType ast.EType
}

var singletons = map[Kind]*Type{
	Int: {Kind: Int}, UInt64: {Kind: UInt64}, Char: {Kind: Char},
	Bool: {Kind: Bool}, Addr: {Kind: Addr}, String: {Kind: String},
	Line: {Kind: Line}, Opcode: {Kind: Opcode}, Operand: {Kind: Operand},
	Null: {Kind: Null}, Void: {Kind: Void}, File: {Kind: File},
}

// Basic returns the singleton for a non-composite kind.
func Basic(k Kind) *Type { return singletons[k] }

// NewCFE returns the type of a CFE variable.
func NewCFE(e ast.EType) *Type { return &Type{Kind: CFE, EType: e} }

// String renders the type in source syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Int:
		return "int"
	case UInt64:
		return "uint64"
	case Char:
		return "char"
	case Bool:
		return "bool"
	case Addr:
		return "addr"
	case String:
		return "string"
	case Line:
		return "line"
	case Opcode:
		return "opcode"
	case Operand:
		return "operand"
	case Null:
		return "null"
	case Void:
		return "void"
	case File:
		return "file"
	case Dict:
		return fmt.Sprintf("dict<%s,%s>", t.Key, t.Elem)
	case Vector:
		return fmt.Sprintf("vector<%s>", t.Elem)
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case CFE:
		return t.EType.String()
	}
	return "invalid"
}

// IsNumeric reports whether values of the type behave as integers.
func (t *Type) IsNumeric() bool {
	switch t.Kind {
	case Int, UInt64, Char, Addr:
		return true
	}
	return false
}

// IsStringy reports whether values of the type behave as text.
func (t *Type) IsStringy() bool { return t.Kind == String || t.Kind == Line }

// AssignableTo reports whether a value of type t may be assigned to a
// variable of type dst.
func (t *Type) AssignableTo(dst *Type) bool {
	if t == nil || dst == nil {
		return false
	}
	switch {
	case t.Kind == dst.Kind && t.Kind != Dict && t.Kind != Vector && t.Kind != Array:
		return true
	case t.IsNumeric() && dst.IsNumeric():
		return true
	case t.Kind == Line && (dst.IsNumeric() || dst.Kind == String):
		// Lines coerce to numbers (parsed) and to strings.
		return true
	case t.Kind == Null && (dst.IsNumeric() || dst.IsStringy()):
		return true
	case t.Kind == Bool && dst.Kind == Bool:
		return true
	case (t.Kind == Dict || t.Kind == Vector || t.Kind == Array) && t.Kind == dst.Kind:
		return t.Elem.AssignableTo(dst.Elem) && (t.Kind != Dict || t.Key.AssignableTo(dst.Key))
	}
	return false
}

// ComparableWith reports whether ==/!= is defined between the types.
func (t *Type) ComparableWith(o *Type) bool {
	switch {
	case t.IsNumeric() && o.IsNumeric():
		return true
	case t.IsStringy() && o.IsStringy():
		return true
	case t.Kind == Opcode && o.Kind == Opcode:
		return true
	case t.Kind == Bool && o.Kind == Bool:
		return true
	case t.Kind == Null || o.Kind == Null:
		return t.nullComparable() && o.nullComparable()
	case t.Kind == Line && o.IsNumeric(), t.IsNumeric() && o.Kind == Line:
		return true
	}
	return false
}

func (t *Type) nullComparable() bool {
	return t.Kind == Null || t.IsNumeric() || t.IsStringy()
}

// OrderedWith reports whether </<=/>/>= is defined between the types.
func (t *Type) OrderedWith(o *Type) bool {
	if t.IsNumeric() && o.IsNumeric() {
		return true
	}
	if t.IsStringy() && o.IsStringy() {
		return true
	}
	return false
}

// ValidDictKey reports whether the type may key a dict.
func (t *Type) ValidDictKey() bool { return t.IsNumeric() || t.Kind == String }

// FromSpec resolves a parsed type specification.
func FromSpec(ts *ast.TypeSpec) (*Type, error) {
	var base *Type
	switch ts.Kind {
	case token.TINT:
		base = Basic(Int)
	case token.TUINT64:
		base = Basic(UInt64)
	case token.TCHAR:
		base = Basic(Char)
	case token.TBOOL:
		base = Basic(Bool)
	case token.TADDR:
		base = Basic(Addr)
	case token.TSTRING:
		base = Basic(String)
	case token.TLINE:
		base = Basic(Line)
	case token.TFILE:
		base = Basic(File)
	case token.TDICT:
		key, err := FromSpec(ts.Key)
		if err != nil {
			return nil, err
		}
		elem, err := FromSpec(ts.Elem)
		if err != nil {
			return nil, err
		}
		if !key.ValidDictKey() {
			return nil, fmt.Errorf("invalid dict key type %s", key)
		}
		if elem.Kind == File || elem.Kind == Dict || elem.Kind == Vector {
			return nil, fmt.Errorf("invalid dict value type %s", elem)
		}
		base = &Type{Kind: Dict, Key: key, Elem: elem}
	case token.TVECTOR:
		elem, err := FromSpec(ts.Elem)
		if err != nil {
			return nil, err
		}
		if elem.Kind == File || elem.Kind == Dict || elem.Kind == Vector {
			return nil, fmt.Errorf("invalid vector element type %s", elem)
		}
		base = &Type{Kind: Vector, Elem: elem}
	default:
		return nil, fmt.Errorf("invalid type")
	}
	if ts.ArrayLen > 0 {
		if !base.IsNumeric() && base.Kind != Bool {
			return nil, fmt.Errorf("invalid array element type %s", base)
		}
		return &Type{Kind: Array, Elem: base, Len: ts.ArrayLen}, nil
	}
	return base, nil
}
