// Package backend maps compiled Cinnamon tools onto the three
// instrumentation frameworks — Pin, Dyninst and Janus — implementing the
// engine.Placer interface for each. This is the code-generator half of
// the Cinnamon compiler in executable form: each placer lowers the shared
// placement rule table (internal/core/placement) with the target
// framework's native mechanism (analysis calls, snippets, rewrite rules +
// clean calls) and its cost model.
//
// The cost asymmetries measured in the paper's Figure 13 live here:
//
//   - Pin: Cinnamon encapsulates every action in a callback invoked by a
//     clean call (never inlined), while hand-written Pin tools register
//     short analysis routines that Pin inlines.
//   - Janus: DynamoRIO inlines clean calls whose callback is simple
//     enough, which Cinnamon's generated callbacks often are; only the
//     rule-decoding glue and payload marshalling remain.
//   - Dyninst: both Cinnamon and native tools insert snippets; Cinnamon
//     pays only a small generic-marshalling surcharge.
package backend

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/core/artifacts"
	"repro/internal/core/engine"
	"repro/internal/core/interp"
	"repro/internal/core/placement"
	"repro/internal/core/sem"
	"repro/internal/core/value"
	"repro/internal/dyninst"
	"repro/internal/isa"
	"repro/internal/janus"
	"repro/internal/obs"
	"repro/internal/pin"
	"repro/internal/vm"
)

// Per-backend glue costs (cycle units): the extra work of Cinnamon's
// generated callback encapsulation compared to a hand-written tool —
// argument unpacking, generic marshalling, rule decoding.
const (
	PinGlue     = 2
	DyninstGlue = 2
	JanusGlue   = 4
)

// Names of the supported backends.
const (
	Pin     = "pin"
	Dyninst = "dyninst"
	Janus   = "janus"
)

// Backends lists the supported backend names.
func Backends() []string { return []string{Pin, Dyninst, Janus} }

// Options configures a tool run.
type Options struct {
	// Out receives the tool's print() output.
	Out io.Writer
	// FS is the tool's file system (fresh in-memory FS if nil).
	FS *interp.FS
	// Fuel bounds application instructions (0 = default).
	Fuel uint64
	// AppOut receives the application's output (discarded if nil).
	AppOut io.Writer
	// PinLoopDetection enables the extension suggested in the paper's
	// Section VI-E: integrate a loop-detection technique into the Pin
	// backend so loop commands become mappable. Loop trigger points are
	// realized as edge instrumentation derived from the detected loops,
	// at clean-call cost plus a per-firing detection surcharge.
	PinLoopDetection bool
	// Interpret runs action bodies with the tree-walking interpreter
	// instead of the closure-compiled path (see engine.Options).
	Interpret bool
	// Obs, when non-nil, collects per-probe firing attribution and
	// instrumentation-time statistics across the engine, the framework
	// and the machine (see internal/obs).
	Obs *obs.Collector
	// VMMode selects the machine's execution tier: vm.ExecTranslated
	// (default) runs cached block programs, vm.ExecInterpreted the
	// reference per-instruction loop. The tiers are bit-identical in
	// every observable; the conformance harness cross-checks them.
	VMMode vm.ExecMode
	// VMNoInline disables the machine's action-inlining layer
	// (specialized thunks, promoted counters, probe+op fusion) on the
	// translated tier. The layer is bit-identical in every observable;
	// this is the escape hatch (and the baseline for perf comparisons).
	VMNoInline bool
	// NoIROpt disables the placement-IR optimization passes
	// (where-clause hoisting, counter promotion, probe coalescing; see
	// internal/core/placement). The passes are bit-identical in every
	// observable; this is the escape hatch (and the baseline the
	// differential placement-equivalence tests compare against).
	NoIROpt bool
	// Adaptive allocates an adaptive control block for every placed
	// probe, so probes can be ejected and re-armed mid-run even when no
	// action carries a `sample` clause (the overhead governor needs
	// this). Sampled actions get control blocks regardless. Probe
	// coalescing is skipped under Adaptive: merged probes have no
	// control block.
	Adaptive bool
	// OnMachine, when non-nil, receives the framework's underlying
	// machine before execution starts — the attachment point for
	// adaptive controllers such as internal/governor.
	OnMachine func(*vm.VM)
	// Stop, when non-nil, is a cooperative cancellation flag polled by
	// the machine at block-start dispatch: setting it from any goroutine
	// makes the run fail with vm.ErrStopped. Session schedulers
	// (internal/fleet) use it to cancel sessions on drain.
	Stop *atomic.Bool
	// Artifacts, when non-nil, is the shared artifact cache consulted
	// for the instrumentation rule template: a hit replays the recorded
	// build (rebinding per-session state) instead of re-walking the CFE
	// hierarchy. Interpreted runs and runs with a caller-supplied FS
	// bypass the cache (their builds are not shareable).
	Artifacts *artifacts.Cache
}

// engineOptions maps the run options onto the instrumentation stage.
func engineOptions(opts Options) engine.Options {
	return engine.Options{
		Out: opts.Out, FS: opts.FS, Interpret: opts.Interpret, Obs: opts.Obs,
		NoIROpt: opts.NoIROpt, Adaptive: opts.Adaptive,
	}
}

// instrument builds the placement rule table and lowers it onto the
// placer, going through the artifact cache when one is attached. On a
// template hit the recorded build is replayed (rebinding per-session
// state: globals, captures, probe registrations) instead of re-walking
// the victim's CFE hierarchy; on a miss the build runs once in
// recording mode and the template is published for later sessions.
func instrument(tool *engine.CompiledTool, prog *cfg.Program, pl engine.Placer, opts Options) (*engine.Instance, error) {
	eopts := engineOptions(opts)
	cache := opts.Artifacts
	if cache == nil || opts.Interpret || opts.FS != nil {
		return engine.Instrument(tool, prog, pl, eopts)
	}
	key := artifacts.TemplateKey{
		Tool: tool, Prog: prog, Backend: pl.Name(),
		PinLoopDetection: opts.PinLoopDetection,
		NoIROpt:          opts.NoIROpt,
		Adaptive:         opts.Adaptive,
	}
	if tmpl, ok := cache.Template(key); ok {
		rs, inst, err := tmpl.Instantiate(eopts)
		if err != nil {
			return nil, err
		}
		if opts.Obs != nil {
			opts.Obs.MutateBuild(func(b *obs.BuildStats) { b.ArtifactHits++ })
		}
		if err := pl.Lower(rs); err != nil {
			return nil, err
		}
		return inst, nil
	}
	tmpl, rs, inst, err := engine.BuildTemplate(tool, prog, pl, eopts)
	if err != nil {
		return nil, err
	}
	evicted := cache.PutTemplate(key, tmpl)
	if opts.Obs != nil {
		opts.Obs.MutateBuild(func(b *obs.BuildStats) {
			b.ArtifactMisses++
			b.ArtifactEvictions += evicted
		})
	}
	if err := pl.Lower(rs); err != nil {
		return nil, err
	}
	return inst, nil
}

// PinLoopDetectCost is the extra per-firing price of the Pin loop
// detection extension (maintaining the block-trace state a dynamic
// loop detector needs).
const PinLoopDetectCost = 6

// Run compiles the tool onto the named backend, executes the program
// under it, and returns the machine result.
func Run(tool *engine.CompiledTool, prog *cfg.Program, backendName string, opts Options) (*vm.Result, error) {
	switch backendName {
	case Pin:
		return runPin(tool, prog, opts)
	case Dyninst:
		return runDyninst(tool, prog, opts)
	case Janus:
		return runJanus(tool, prog, opts)
	}
	return nil, fmt.Errorf("cinnamon: unknown backend %q (have %s)", backendName, strings.Join(Backends(), ", "))
}

// Prepare performs the instrumentation stage for the named backend
// without executing the program: framework construction, rule-table
// build (or cached-template instantiation) and lowering — exactly the
// per-session startup work a scheduler does before a session's first
// instruction. Also a dry-run validator: a tool that cannot be mapped
// onto the backend fails here. The fleet benchmark times it to compare
// cold and warm session startup.
func Prepare(tool *engine.CompiledTool, prog *cfg.Program, backendName string, opts Options) error {
	switch backendName {
	case Pin:
		p := pin.New(prog, pin.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, Stop: opts.Stop})
		pl := &pinPlacer{
			p: p, prog: prog,
			loopDetection: opts.PinLoopDetection,
			before:        make(map[uint64][]pinPlacement),
			after:         make(map[uint64][]pinPlacement),
			blocks:        make(map[uint64][]pinPlacement),
		}
		_, err := instrument(tool, prog, pl, opts)
		return err
	case Dyninst:
		be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, Stop: opts.Stop})
		if err != nil {
			return err
		}
		_, err = instrument(tool, prog, &dyninstPlacer{be: be, prog: prog}, opts)
		return err
	case Janus:
		_, err := instrument(tool, prog, &janusPlacer{prog: prog}, opts)
		return err
	}
	return fmt.Errorf("cinnamon: unknown backend %q (have %s)", backendName, strings.Join(Backends(), ", "))
}

// dynSlots fills the pre-sized attribute slot buffer from raw
// materialized words. The buffer is allocated once per placement and
// reused across firings (probes of one machine fire sequentially), so
// marshalling attribute values allocates nothing in steady state.
func dynSlots(buf []value.Value, words []uint64) []value.Value {
	for i, w := range words {
		buf[i] = value.UintVal(w)
	}
	return buf
}

// ---------------------------------------------------------------------------
// Pin backend

type pinPlacer struct {
	p    *pin.Pin
	prog *cfg.Program
	// loopDetection enables the Section VI-E extension (see
	// Options.PinLoopDetection).
	loopDetection bool

	before, after map[uint64][]pinPlacement
	blocks        map[uint64][]pinPlacement
	edges         []pinEdge
}

type pinEdge struct {
	from, to uint64
	p        pinPlacement
}

type pinPlacement struct {
	routine pin.Routine
	args    []pin.Arg
}

func (pl *pinPlacer) Name() string           { return Pin }
func (pl *pinPlacer) Modules() []*cfg.Module { return pl.prog.Modules }
func (pl *pinPlacer) SupportsLoops() bool    { return pl.loopDetection }

// pinArgs maps the action's dynamic attributes to IARG descriptors — the
// interface between the static and dynamic contexts for this framework.
func pinArgs(attrs []sem.DynAttr) ([]pin.Arg, error) {
	args := make([]pin.Arg, 0, len(attrs))
	for _, a := range attrs {
		switch {
		case a.Attr == "memaddr" || a.Attr == "srcaddr" || a.Attr == "dstaddr":
			args = append(args, pin.MemoryEA())
		case a.Attr == "rtnval":
			args = append(args, pin.RetVal())
		case a.Attr == "trgaddr":
			args = append(args, pin.BranchTarget())
		case strings.HasPrefix(a.Attr, "arg"):
			n, err := strconv.Atoi(a.Attr[3:])
			if err != nil {
				return nil, fmt.Errorf("cinnamon: bad call-argument attribute %q", a.Attr)
			}
			args = append(args, pin.FuncArg(n))
		default:
			return nil, fmt.Errorf("cinnamon: no Pin IARG mapping for dynamic attribute %q", a.Attr)
		}
	}
	return args, nil
}

// pinRoutine lowers one rule onto an analysis routine. The rule's
// mechanism tier selects which fast surfaces the routine advertises;
// merged rules carry one pin.Part per constituent so Pin registers and
// prices each separately.
func pinRoutine(r *placement.Rule) (pinPlacement, error) {
	a := r.Action
	args, err := pinArgs(a.DynAttrs)
	if err != nil {
		return pinPlacement{}, err
	}
	buf := make([]value.Value, len(a.DynAttrs))
	exec := a.Exec
	routine := pin.Routine{
		Fn:   func(words []uint64) { exec(dynSlots(buf, words)) },
		Cost: a.Cost + PinGlue,
		// Cinnamon's generated callbacks are generic encapsulations;
		// Pin's automatic inlining never applies to them.
		Inlinable: false,
		Label:     a.Label,
		Sample:    a.Sample,
	}
	switch r.Mechanism {
	case placement.MechCounter:
		il := a.Inline
		routine.CounterDelta, routine.CounterFlush = il.Delta, il.Flush
	case placement.MechFast:
		fbuf := make([]value.Value, len(a.DynAttrs))
		fast := a.Inline.Exec
		routine.FastFn = func(words []uint64) { fast(dynSlots(fbuf, words)) }
	}
	if parts := r.Merged; len(parts) > 0 {
		routine.Merged = make([]pin.Part, len(parts))
		for i, p := range parts {
			routine.Merged[i] = pin.Part{Label: p.Action.Label, Cost: p.Action.Cost + PinGlue}
		}
	}
	return pinPlacement{routine: routine, args: args}, nil
}

// Lower realizes the rule table as Pin placements: the instrumentation
// callbacks registered by runPin look them up per instruction / trace.
func (pl *pinPlacer) Lower(rs *placement.RuleSet) error {
	for _, r := range rs.Rules() {
		p, err := pinRoutine(r)
		if err != nil {
			return err
		}
		switch r.Trigger {
		case placement.Before:
			pl.before[r.Inst.Addr] = append(pl.before[r.Inst.Addr], p)
		case placement.After:
			pl.after[r.Inst.Addr] = append(pl.after[r.Inst.Addr], p)
		case placement.BlockEntry:
			pl.blocks[r.Block.Start] = append(pl.blocks[r.Block.Start], p)
		case placement.Edge:
			if !pl.loopDetection {
				return fmt.Errorf("cinnamon: pin backend cannot instrument CFG edges (no loop support)")
			}
			// The detection surcharge models the run-time bookkeeping a
			// dynamic loop detector performs on top of the clean call —
			// per constituent for merged probes, matching separate
			// installation row for row.
			p.routine.Cost += PinLoopDetectCost
			for i := range p.routine.Merged {
				p.routine.Merged[i].Cost += PinLoopDetectCost
			}
			pl.edges = append(pl.edges, pinEdge{r.From.Start, r.Block.Start, p})
		}
	}
	for _, fn := range rs.Inits {
		fn := fn
		pl.p.VM().OnStart(func(*vm.Ctx) { fn() })
	}
	for _, fn := range rs.Finis {
		pl.p.AddFiniFunction(fn)
	}
	return nil
}

func runPin(tool *engine.CompiledTool, prog *cfg.Program, opts Options) (*vm.Result, error) {
	p := pin.New(prog, pin.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, OnMachine: opts.OnMachine, Stop: opts.Stop})
	pl := &pinPlacer{
		p: p, prog: prog,
		loopDetection: opts.PinLoopDetection,
		before:        make(map[uint64][]pinPlacement),
		after:         make(map[uint64][]pinPlacement),
		blocks:        make(map[uint64][]pinPlacement),
	}
	inst, err := instrument(tool, prog, pl, opts)
	if err != nil {
		return nil, err
	}
	// The generated Pin tool: one instruction-mode callback that looks up
	// the placements computed by the analysis stage, plus a trace-mode
	// callback for block-entry actions.
	var cbErr error
	record := func(err error) {
		if err != nil && cbErr == nil {
			cbErr = err
		}
	}
	p.INSAddInstrumentFunction(func(ins pin.INS) {
		for _, plc := range pl.before[ins.Address()] {
			record(ins.InsertCall(pin.IPointBefore, plc.routine, plc.args...))
		}
		for _, plc := range pl.after[ins.Address()] {
			record(ins.InsertCall(pin.IPointAfter, plc.routine, plc.args...))
		}
	})
	p.TraceAddInstrumentFunction(func(tr pin.TRACE) {
		for _, bbl := range tr.BBLs() {
			for _, plc := range pl.blocks[bbl.Address()] {
				record(bbl.InsertCall(plc.routine, plc.args...))
			}
		}
	})
	// The loop-detection extension realizes loop trigger points through
	// edge instrumentation on the machine underneath Pin.
	for _, e := range pl.edges {
		e := e
		r := e.p.routine
		words := make([]uint64, len(e.p.args))
		var spec *vm.ProbeSpec
		if r.CounterFlush != nil {
			spec = &vm.ProbeSpec{Counter: true, Delta: r.CounterDelta, Flush: r.CounterFlush}
		} else if r.FastFn != nil {
			fast := r.FastFn
			spec = &vm.ProbeSpec{Fn: func(c *vm.Ctx) { fast(words) }}
		}
		if len(r.Merged) > 0 {
			shares := make([]vm.Share, len(r.Merged))
			for i, part := range r.Merged {
				pc := pin.CleanCallCost + part.Cost
				id := obs.NoProbe
				if opts.Obs != nil {
					opts.Obs.MutateBuild(func(b *obs.BuildStats) { b.CleanCalls++ })
					id = opts.Obs.RegisterProbe(obs.ProbeMeta{
						Label:        part.Label,
						Trigger:      obs.TriggerEdge,
						Mechanism:    obs.MechCleanCall,
						Addr:         e.to,
						DispatchCost: pc,
					})
				}
				shares[i] = vm.Share{ID: id, Cost: pc}
			}
			record(p.VM().AddEdgeCoalesced(e.from, e.to, shares, func(c *vm.Ctx) {
				r.Fn(words)
			}, spec))
			continue
		}
		cost := pin.CleanCallCost + r.Cost + uint64(len(e.p.args))*pin.ArgCost
		id := obs.NoProbe
		if opts.Obs != nil {
			opts.Obs.MutateBuild(func(b *obs.BuildStats) { b.CleanCalls++ })
			id = opts.Obs.RegisterProbe(obs.ProbeMeta{
				Label:        r.Label,
				Trigger:      obs.TriggerEdge,
				Mechanism:    obs.MechCleanCall,
				Addr:         e.to,
				DispatchCost: cost,
			})
		}
		record(p.VM().AddEdgeSampled(e.from, e.to, cost, id, func(c *vm.Ctx) {
			r.Fn(words)
		}, spec, r.Sample))
	}
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if cbErr != nil {
		return nil, cbErr
	}
	if err := inst.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Dyninst backend

type dyninstPlacer struct {
	be   *dyninst.BinaryEdit
	prog *cfg.Program
}

func (pl *dyninstPlacer) Name() string        { return Dyninst }
func (pl *dyninstPlacer) SupportsLoops() bool { return true }

// Modules returns only the executable: the static rewriter does not touch
// shared libraries.
func (pl *dyninstPlacer) Modules() []*cfg.Module { return pl.prog.Modules[:1] }

// dyninstSnippet lowers one rule onto a snippet call: dynamic attributes
// become snippet argument expressions, the rule's mechanism tier selects
// the fast surfaces, and merged rules carry one dyninst.Part per
// constituent so the rewriter registers and prices each separately.
func dyninstSnippet(r *placement.Rule) (dyninst.Snippet, error) {
	a := r.Action
	args := make([]dyninst.Snippet, 0, len(a.DynAttrs))
	for _, da := range a.DynAttrs {
		switch {
		case da.Attr == "memaddr" || da.Attr == "srcaddr" || da.Attr == "dstaddr":
			args = append(args, dyninst.EffectiveAddressExpr{})
		case da.Attr == "rtnval":
			args = append(args, dyninst.RetExpr{})
		case da.Attr == "trgaddr":
			args = append(args, dyninst.BranchTargetExpr{})
		case strings.HasPrefix(da.Attr, "arg"):
			n, err := strconv.Atoi(da.Attr[3:])
			if err != nil {
				return nil, fmt.Errorf("cinnamon: bad call-argument attribute %q", da.Attr)
			}
			args = append(args, dyninst.ParamExpr{N: n})
		default:
			return nil, fmt.Errorf("cinnamon: no Dyninst snippet mapping for dynamic attribute %q", da.Attr)
		}
	}
	buf := make([]value.Value, len(a.DynAttrs))
	exec := a.Exec
	call := dyninst.FuncCallExpr{
		Fn:     func(words []uint64) { exec(dynSlots(buf, words)) },
		Args:   args,
		Cost:   a.Cost + DyninstGlue,
		Label:  a.Label,
		Sample: a.Sample,
	}
	switch r.Mechanism {
	case placement.MechCounter:
		il := a.Inline
		call.CounterDelta, call.CounterFlush = il.Delta, il.Flush
	case placement.MechFast:
		fbuf := make([]value.Value, len(a.DynAttrs))
		fast := a.Inline.Exec
		call.FastFn = func(words []uint64) { fast(dynSlots(fbuf, words)) }
	}
	if parts := r.Merged; len(parts) > 0 {
		call.Merged = make([]dyninst.Part, len(parts))
		for i, p := range parts {
			call.Merged[i] = dyninst.Part{Label: p.Action.Label, Cost: p.Action.Cost + DyninstGlue}
		}
	}
	return call, nil
}

// Lower realizes the rule table as snippet insertions on the opened
// binary; BinaryEdit.Run bakes them in before the first instruction.
func (pl *dyninstPlacer) Lower(rs *placement.RuleSet) error {
	img := pl.be.Image()
	for _, r := range rs.Rules() {
		s, err := dyninstSnippet(r)
		if err != nil {
			return err
		}
		var pt *dyninst.Point
		when := dyninst.CallBefore
		switch r.Trigger {
		case placement.Before, placement.After:
			if r.Trigger == placement.After {
				when = dyninst.CallAfter
			}
			pt, err = img.InstPoint(r.Inst.Addr)
		case placement.BlockEntry:
			pt, err = img.BlockEntryPoint(r.Block.Start)
		case placement.Edge:
			pt, err = img.EdgePoint(r.From.Start, r.Block.Start)
		}
		if err != nil {
			return err
		}
		if err := pl.be.InsertSnippet(s, pt, when); err != nil {
			return err
		}
	}
	for _, fn := range rs.Inits {
		pl.be.OnInit(fn)
	}
	for _, fn := range rs.Finis {
		pl.be.OnFini(fn)
	}
	return nil
}

func runDyninst(tool *engine.CompiledTool, prog *cfg.Program, opts Options) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, OnMachine: opts.OnMachine, Stop: opts.Stop})
	if err != nil {
		return nil, err
	}
	pl := &dyninstPlacer{be: be, prog: prog}
	inst, err := instrument(tool, prog, pl, opts)
	if err != nil {
		return nil, err
	}
	res, err := be.Run()
	if err != nil {
		return nil, err
	}
	if err := inst.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Janus backend

type janusPlacer struct {
	prog *cfg.Program
	rs   *placement.RuleSet
}

func (pl *janusPlacer) Name() string        { return Janus }
func (pl *janusPlacer) SupportsLoops() bool { return true }

// Modules returns only the executable: the Janus static analyzer only
// annotates the main binary, so shared-library code is never
// instrumented.
func (pl *janusPlacer) Modules() []*cfg.Module { return pl.prog.Modules[:1] }

// Lower hands the rule table to the dynamic instrumenter as-is — Janus
// consumes the placement IR natively (its rewrite-rule table is the
// same shape) — after validating trigger points eagerly (Section
// III-B6: "throw an error if not"); the dynamic side would otherwise
// silently skip the rule.
func (pl *janusPlacer) Lower(rs *placement.RuleSet) error {
	for _, r := range rs.Rules() {
		if r.Trigger != placement.After {
			continue
		}
		switch r.Inst.Op {
		case isa.Branch, isa.Return, isa.Halt:
			return fmt.Errorf("cinnamon: after-trigger invalid on %s at %#x", r.Inst.Op, r.Inst.Addr)
		}
	}
	pl.rs = rs
	return nil
}

func runJanus(tool *engine.CompiledTool, prog *cfg.Program, opts Options) (*vm.Result, error) {
	pl := &janusPlacer{prog: prog}
	inst, err := instrument(tool, prog, pl, opts)
	if err != nil {
		return nil, err
	}
	jt := &janus.Tool{Name: "cinnamon", Rules: pl.rs}
	res, err := janus.Run(prog, jt, janus.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, OnMachine: opts.OnMachine, Stop: opts.Stop, Glue: JanusGlue})
	if err != nil {
		return nil, err
	}
	if err := inst.Err(); err != nil {
		return nil, err
	}
	return res, nil
}
