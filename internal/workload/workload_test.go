package workload

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vm"
)

func buildAndRun(t *testing.T, mods []*obj.Module, scaleFuel uint64) (*cfg.Program, *vm.Result) {
	t.Helper()
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(prog, vm.Config{Fuel: scaleFuel})
	res, err := machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	return prog, res
}

func TestSuiteShape(t *testing.T) {
	suite := SPEC2017()
	if len(suite) != 23 {
		t.Fatalf("suite size = %d, want 23", len(suite))
	}
	names := map[string]bool{}
	sharedHeavy, unrecoverable := 0, 0
	for _, s := range suite {
		if names[s.Name] {
			t.Errorf("duplicate benchmark %q", s.Name)
		}
		names[s.Name] = true
		if s.SharedLibFrac >= 0.5 {
			sharedHeavy++
		}
		if s.Unrecoverable {
			unrecoverable++
		}
	}
	if sharedHeavy != 4 {
		t.Errorf("shared-lib-heavy benchmarks = %d, want 4", sharedHeavy)
	}
	if unrecoverable != 5 {
		t.Errorf("unrecoverable benchmarks = %d, want 5", unrecoverable)
	}
	for _, name := range []string{"omnetpp", "exchange2", "bwaves", "fotonik3d"} {
		s, ok := ByName(name)
		if !ok || s.SharedLibFrac < 0.5 {
			t.Errorf("%s should be shared-lib heavy", name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName(nonesuch) succeeded")
	}
}

func TestEveryBenchmarkBuildsAndRuns(t *testing.T) {
	for _, s := range SPEC2017() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			mods, err := s.Build(0.05)
			if err != nil {
				t.Fatal(err)
			}
			prog, res := buildAndRun(t, mods, 50_000_000)
			if res.Insts == 0 {
				t.Error("no instructions executed")
			}
			exe := prog.Modules[0]
			if exe.Name() != s.Name {
				t.Errorf("module name = %q", exe.Name())
			}
			// Structural expectations: workers + main + 2 tiny helpers.
			if len(exe.Funcs) != s.Funcs+3 {
				t.Errorf("funcs = %d, want %d", len(exe.Funcs), s.Funcs+3)
			}
			loops := 0
			for _, f := range exe.Funcs {
				loops += len(f.Loops)
			}
			if loops == 0 {
				t.Error("no loops recovered")
			}
			if s.SharedLibFrac > 0 && len(prog.Modules) != 2 {
				t.Error("shared-lib benchmark missing libshared")
			}
			if s.Unrecoverable != exe.Loaded.HasUnrecoverableControlFlow() {
				t.Errorf("unrecoverable flag mismatch: spec=%v module=%v", s.Unrecoverable, exe.Loaded.HasUnrecoverableControlFlow())
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	s, _ := ByName("mcf")
	mods1, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	mods2, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := obj.Encode(mods1[0])
	if err != nil {
		t.Fatal(err)
	}
	b2, err := obj.Encode(mods2[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("same seed produced different binaries")
	}
	_, r1 := buildAndRun(t, mods1, 50_000_000)
	_, r2 := buildAndRun(t, mods2, 50_000_000)
	if r1.Insts != r2.Insts || r1.Cycles != r2.Cycles {
		t.Errorf("nondeterministic execution: %+v vs %+v", r1, r2)
	}
}

func TestScaleGrowsWork(t *testing.T) {
	s, _ := ByName("xz")
	small, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.Build(0.2)
	if err != nil {
		t.Fatal(err)
	}
	_, rs := buildAndRun(t, small, 100_000_000)
	_, rl := buildAndRun(t, large, 100_000_000)
	if rl.Insts <= rs.Insts {
		t.Errorf("scale 0.2 (%d insts) not larger than 0.05 (%d insts)", rl.Insts, rs.Insts)
	}
}

func TestSharedLibCodeExecutes(t *testing.T) {
	s, _ := ByName("omnetpp")
	mods, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(prog, vm.Config{Fuel: 50_000_000})
	lib := prog.Modules[1]
	libLoads := 0
	for _, f := range lib.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == isa.Load {
					if err := machine.AddBefore(in.Addr, 0, func(c *vm.Ctx) { libLoads++ }); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if _, err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	if libLoads == 0 {
		t.Error("no shared-library loads executed")
	}
}

func TestVictimsAssembleAndBehave(t *testing.T) {
	for name := range Victims() {
		if _, err := Victim(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Victim("nope"); err == nil {
		t.Error("unknown victim accepted")
	}

	// uaf_bug really performs an access to freed memory.
	m, err := Victim("uaf_bug")
	if err != nil {
		t.Fatal(err)
	}
	_, res := buildAndRun(t, []*obj.Module{m}, 1_000_000)
	if res.Allocs != 1 || res.Frees != 1 {
		t.Errorf("uaf_bug allocs=%d frees=%d", res.Allocs, res.Frees)
	}

	// stack_smash diverts control into evil (the post-call print of 1 is
	// skipped; 666 is printed instead).
	m, err = Victim("stack_smash")
	if err != nil {
		t.Fatal(err)
	}
	p, err := obj.Load([]*obj.Module{m}, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	var out testWriter
	machine := vm.New(prog, vm.Config{AppOut: &out})
	if _, err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "666\n" {
		t.Errorf("stack_smash output = %q, want 666", out.String())
	}

	// loopy has a recoverable loop in each function.
	m, err = Victim("loopy")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ = buildAndRun(t, []*obj.Module{m}, 1_000_000)
	total := 0
	for _, f := range prog.Modules[0].Funcs {
		total += len(f.Loops)
	}
	if total != 2 {
		t.Errorf("loopy loops = %d, want 2", total)
	}
}

type testWriter struct{ b []byte }

func (w *testWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *testWriter) String() string              { return string(w.b) }
