package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegisterAndFire(t *testing.T) {
	c := New(Options{})
	a := c.RegisterProbe(ProbeMeta{Label: "before inst @1:1", Trigger: TriggerBefore, Mechanism: MechCleanCall, Addr: 0x1000, DispatchCost: 30})
	b := c.RegisterProbe(ProbeMeta{Label: "entry basicblock @2:3", Trigger: TriggerBlockEntry, Mechanism: MechSnippet, Addr: 0x2000, DispatchCost: 14})
	if a.Index() != 1 || b.Index() != 2 {
		t.Fatalf("indexes = %d, %d, want 1, 2", a.Index(), b.Index())
	}
	if a.gen() == 0 || a.gen() != b.gen() {
		t.Fatalf("ids %#x, %#x must share the collector's nonzero generation", a, b)
	}
	for i := 0; i < 3; i++ {
		c.Fire(a, 30, 0x1000)
	}
	c.Fire(b, 14, 0x2000)
	c.Fire(NoProbe, 7, 0x3000)  // untagged
	c.Fire(ProbeID(99), 5, 0x4) // foreign id: must not panic, lands untracked

	s := c.Snapshot("pin")
	if s.Backend != "pin" {
		t.Errorf("backend = %q", s.Backend)
	}
	if got := s.Probes[0].Fires; got != 3 {
		t.Errorf("probe a fires = %d, want 3", got)
	}
	if got := s.Probes[0].Cycles; got != 90 {
		t.Errorf("probe a cycles = %d, want 90", got)
	}
	if got := s.Probes[1].Fires; got != 1 {
		t.Errorf("probe b fires = %d, want 1", got)
	}
	if s.UntrackedFires != 2 || s.UntrackedCycles != 12 {
		t.Errorf("untracked = %d fires / %d cycles, want 2 / 12", s.UntrackedFires, s.UntrackedCycles)
	}
	if s.TotalFires != 6 {
		t.Errorf("total fires = %d, want 6", s.TotalFires)
	}
	if s.ProbeCycles != 90+14+12 {
		t.Errorf("probe cycles = %d, want %d", s.ProbeCycles, 90+14+12)
	}
	if got := s.FiresWhere(func(p ProbeStats) bool { return p.Trigger == TriggerBefore }); got != 3 {
		t.Errorf("FiresWhere(before) = %d, want 3", got)
	}
	if got := s.CyclesWhere(func(p ProbeStats) bool { return p.Mechanism == MechSnippet }); got != 14 {
		t.Errorf("CyclesWhere(snippet) = %d, want 14", got)
	}
}

// TestCrossCollectorFireLandsUntracked is the regression test for the
// silent misattribution window: a ProbeID minted by collector A, whose
// index is also in range on collector B, must land in B's untracked
// bucket — not in B's same-index slot. The parallel bench harness runs
// one collector per (benchmark, framework) cell, so without the
// generation tag a leaked ID would corrupt a sibling cell's counters.
func TestCrossCollectorFireLandsUntracked(t *testing.T) {
	a := New(Options{})
	b := New(Options{})
	idA := a.RegisterProbe(ProbeMeta{Label: "a's probe"})
	idB := b.RegisterProbe(ProbeMeta{Label: "b's probe"})
	if idA.Index() != 1 || idB.Index() != 1 {
		t.Fatalf("both ids should have index 1, got %d, %d", idA.Index(), idB.Index())
	}

	b.Fire(idA, 10, 0x100) // foreign: in-range index, wrong generation
	b.Fire(idB, 3, 0x200)  // b's own

	s := b.Snapshot("test")
	if s.Probes[0].Fires != 1 || s.Probes[0].Cycles != 3 {
		t.Errorf("b's probe = %d fires / %d cycles, want 1 / 3 (foreign firing misattributed?)",
			s.Probes[0].Fires, s.Probes[0].Cycles)
	}
	if s.UntrackedFires != 1 || s.UntrackedCycles != 10 {
		t.Errorf("untracked = %d fires / %d cycles, want 1 / 10", s.UntrackedFires, s.UntrackedCycles)
	}
	if s.TotalFires != 2 {
		t.Errorf("total fires = %d, want 2 (firing lost)", s.TotalFires)
	}
}

// TestConcurrentSnapshotDuringFire scrapes the collector from several
// goroutines while the writer fires, checking (under -race) that the
// read path is data-race-free and that every counter is monotonically
// non-decreasing across consecutive snapshots.
func TestConcurrentSnapshotDuringFire(t *testing.T) {
	c := New(Options{TraceCap: 16})
	id := c.RegisterProbe(ProbeMeta{Label: "hot", Trigger: TriggerBefore, Mechanism: MechCleanCall})

	const fires = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < fires; i++ {
			c.Fire(id, 3, uint64(i))
			if i%1000 == 0 {
				// Registration mid-run, as dynamic frameworks do at
				// block-translation time.
				c.RegisterProbe(ProbeMeta{Label: "late"})
				c.NoteTranslation(7)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prevFires, prevCycles, prevTranslated uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				s := c.Snapshot("test")
				if s.TotalFires < prevFires {
					t.Errorf("total fires went backwards: %d -> %d", prevFires, s.TotalFires)
					return
				}
				if s.ProbeCycles < prevCycles {
					t.Errorf("probe cycles went backwards: %d -> %d", prevCycles, s.ProbeCycles)
					return
				}
				if tc := uint64(s.Build.BlocksTranslated); tc < prevTranslated {
					t.Errorf("blocks translated went backwards: %d -> %d", prevTranslated, tc)
					return
				}
				prevFires, prevCycles = s.TotalFires, s.ProbeCycles
				prevTranslated = uint64(s.Build.BlocksTranslated)
				for _, ev := range s.Trace.Events {
					// push(id, pc=i, cost=3): a torn event that slipped
					// through seq validation would break this.
					if ev.Cost != 3 {
						t.Errorf("torn trace event: %+v", ev)
						return
					}
				}
			}
		}()
	}
	<-done
	wg.Wait()

	s := c.Snapshot("test")
	if got := s.Probes[0].Fires; got != fires {
		t.Errorf("final fires = %d, want %d", got, fires)
	}
	if got := s.Probes[0].Cycles; got != 3*fires {
		t.Errorf("final cycles = %d, want %d", got, 3*fires)
	}
}

// TestSubscribeTap checks the streaming tap: events arrive on the
// channel with normalized probe indexes, a full channel drops instead
// of blocking, and drop counts are surfaced and survive unsubscribe.
func TestSubscribeTap(t *testing.T) {
	c := New(Options{}) // no trace ring: the tap works independently
	id := c.RegisterProbe(ProbeMeta{Label: "p"})

	ch := make(chan TraceEvent, 2)
	sub := c.Subscribe(ch)
	if c.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", c.Subscribers())
	}

	for i := 0; i < 5; i++ {
		c.Fire(id, 10, uint64(0x100+i)) // only 2 fit; 3 must drop, not block
	}
	if got := sub.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	ev := <-ch
	if ev.Seq != 0 || ev.Probe != 1 || ev.PC != 0x100 || ev.Cost != 10 {
		t.Errorf("first event = %+v, want seq 0, probe 1, pc 0x100, cost 10", ev)
	}

	c.Unsubscribe(sub)
	if c.Subscribers() != 0 {
		t.Errorf("subscribers after unsubscribe = %d", c.Subscribers())
	}
	if got := c.SubscriberDrops(); got != 3 {
		t.Errorf("retired drops = %d, want 3", got)
	}
	c.Fire(id, 10, 0x900) // no subscribers: must not send or panic
	if len(ch) != 1 {
		t.Errorf("fire after unsubscribe reached the channel")
	}
}

func TestTraceRingWraparound(t *testing.T) {
	const cap = 4
	c := New(Options{TraceCap: cap})
	id := c.RegisterProbe(ProbeMeta{Label: "p", Trigger: TriggerBefore, Mechanism: MechCleanCall})
	const total = 11
	for i := 0; i < total; i++ {
		c.Fire(id, uint64(i), uint64(0x100+i))
	}
	s := c.Snapshot("janus")
	tr := s.Trace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.Cap != cap {
		t.Errorf("cap = %d, want %d", tr.Cap, cap)
	}
	if tr.Dropped != total-cap {
		t.Errorf("dropped = %d, want %d", tr.Dropped, total-cap)
	}
	if len(tr.Events) != cap {
		t.Fatalf("len(events) = %d, want %d", len(tr.Events), cap)
	}
	// The window must be the LAST cap firings with contiguous sequence
	// numbers, oldest first.
	for i, e := range tr.Events {
		wantSeq := uint64(total - cap + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.PC != 0x100+wantSeq {
			t.Errorf("event %d pc = %#x, want %#x", i, e.PC, 0x100+wantSeq)
		}
		if e.Probe != 1 {
			t.Errorf("event %d probe = %d, want normalized index 1", i, e.Probe)
		}
	}
}

func TestTraceUnderfill(t *testing.T) {
	c := New(Options{TraceCap: 8})
	id := c.RegisterProbe(ProbeMeta{Label: "p"})
	c.Fire(id, 1, 0x10)
	c.Fire(id, 2, 0x20)
	tr := c.Snapshot("dyninst").Trace
	if tr.Dropped != 0 || len(tr.Events) != 2 {
		t.Fatalf("dropped=%d events=%d, want 0/2", tr.Dropped, len(tr.Events))
	}
	if tr.Events[0].Seq != 0 || tr.Events[1].Seq != 1 {
		t.Errorf("seqs = %d,%d, want 0,1", tr.Events[0].Seq, tr.Events[1].Seq)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := New(Options{TraceCap: 2})
	id := c.RegisterProbe(ProbeMeta{Label: "before inst @3:3", Trigger: TriggerBefore, Mechanism: MechInlinedCall, Addr: 0x40, DispatchCost: 12})
	c.Fire(id, 12, 0x40)
	c.MutateBuild(func(b *BuildStats) { b.ActionsPlaced = 1 })
	c.NoteTranslation(300)

	var buf bytes.Buffer
	if err := c.Snapshot("janus").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Backend != "janus" || back.TotalFires != 1 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	if back.Build.BlocksTranslated != 1 || back.Build.TranslationCycles != 300 {
		t.Errorf("build stats lost: %+v", back.Build)
	}
	if len(back.Probes) != 1 || back.Probes[0].Label != "before inst @3:3" {
		t.Errorf("probe meta lost: %+v", back.Probes)
	}
}

func TestWriteTableGroupsPlacements(t *testing.T) {
	c := New(Options{})
	// Two placements (sites) of the same action must fold into one row.
	for i := 0; i < 2; i++ {
		id := c.RegisterProbe(ProbeMeta{Label: "entry basicblock @5:3", Trigger: TriggerBlockEntry, Mechanism: MechSnippet, Addr: uint64(0x100 * (i + 1)), DispatchCost: 14})
		c.Fire(id, 14, uint64(0x100*(i+1)))
	}
	var buf bytes.Buffer
	c.Snapshot("dyninst").WriteTable(&buf)
	out := buf.String()
	if n := strings.Count(out, "entry basicblock @5:3"); n != 1 {
		t.Errorf("want 1 grouped row, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "total: 2 fires") {
		t.Errorf("missing total line:\n%s", out)
	}
}
