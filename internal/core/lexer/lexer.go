// Package lexer tokenizes Cinnamon source text.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/core/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("cinnamon: %s: %s", e.Pos, e.Msg) }

// Lexer produces tokens from source text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	err  *Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input and returns the token stream terminated
// by an EOF token.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t := lx.Next()
		if lx.err != nil {
			return nil, lx.err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) token.Token {
	if l.err == nil {
		l.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	return token.Token{Kind: token.ILLEGAL, Pos: pos}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
				l.advance()
			}
			if l.pos < len(l.src) {
				l.advance()
				l.advance()
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := token.Pos{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.pos - 1
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if k, ok := token.Keywords[word]; ok {
			return token.Token{Kind: k, Pos: pos, Lit: word}
		}
		if token.Opcodes[word] {
			return token.Token{Kind: token.OPCODE, Pos: pos, Lit: word}
		}
		return token.Token{Kind: token.IDENT, Pos: pos, Lit: word}
	case isDigit(c):
		start := l.pos - 1
		if c == '0' && (l.peek() == 'x' || l.peek() == 'X') {
			l.advance()
			for l.pos < len(l.src) && isHex(l.peek()) {
				l.advance()
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return token.Token{Kind: token.INT, Pos: pos, Lit: l.src[start:l.pos]}
	case c == '"':
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return l.errorf(pos, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return l.errorf(pos, "unterminated string literal")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					return l.errorf(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			if ch == '\n' {
				return l.errorf(pos, "newline in string literal")
			}
			sb.WriteByte(ch)
		}
		return token.Token{Kind: token.STRING, Pos: pos, Lit: sb.String()}
	case c == '\'':
		if l.pos >= len(l.src) {
			return l.errorf(pos, "unterminated char literal")
		}
		ch := l.advance()
		if ch == '\\' {
			if l.pos >= len(l.src) {
				return l.errorf(pos, "unterminated char literal")
			}
			esc := l.advance()
			switch esc {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case '\\', '\'':
				ch = esc
			default:
				return l.errorf(pos, "unknown escape \\%c", esc)
			}
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return l.errorf(pos, "unterminated char literal")
		}
		return token.Token{Kind: token.CHAR, Pos: pos, Lit: string(ch)}
	}

	two := func(second byte, yes, no token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}
	switch c {
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GE, token.GT)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		return two('|', token.LOR, token.PIPE)
	case '^':
		return token.Token{Kind: token.CARET, Pos: pos}
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	}
	return l.errorf(pos, "unexpected character %q", c)
}

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
