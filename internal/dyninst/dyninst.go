// Package dyninst is a clean-room, Go reimplementation of the programming
// model of Dyninst's static binary rewriting mode (the BPatch API). It is
// one of the three backend substrates the Cinnamon compiler targets.
//
// The API mirrors the BPatch surface: open a binary for editing, look up
// functions and instrumentation points through the image, build snippet
// ASTs (BPatch_funcCallExpr, BPatch_effectiveAddressExpr, BPatch_retExpr,
// BPatch_paramExpr, ...), and insert them at points. Like real Dyninst
// used as a static rewriter:
//
//   - only the opened binary (the main executable image) is instrumented —
//     shared-library code runs uninstrumented, so counts miss it;
//   - instrumentation is baked in ahead of execution via trampolines, so
//     there is no JIT translation cost at run time (Dyninst has the
//     cheapest dispatch of the three frameworks in Figure 13);
//   - binaries whose control flow cannot be fully recovered (unresolvable
//     indirect jumps) are rejected at parse time, reproducing the SPEC
//     benchmarks the paper could not run under Dyninst.
package dyninst

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Dispatch cost model (cycle units). A snippet trampoline redirects
// control and spills only the registers the snippet needs, which is
// cheaper than a dynamic framework's clean call.
const (
	// SnippetCost is charged per snippet invocation (trampoline in/out).
	SnippetCost = 12
	// ArgEvalCost is charged per snippet-expression operand evaluated.
	ArgEvalCost = 2
)

// CallWhen selects before/after placement at an instruction point
// (BPatch_callWhen).
type CallWhen int

// Placement relative to a point.
const (
	CallBefore CallWhen = iota
	CallAfter
)

// ProcedureLocation selects a class of points within a function
// (BPatch_procedureLocation).
type ProcedureLocation int

// Point classes.
const (
	// Entry is the function entry point (BPatch_entry).
	Entry ProcedureLocation = iota
	// Exit covers every return of the function (BPatch_exit).
	Exit
	// Subroutine covers every call site in the function
	// (BPatch_subroutine).
	Subroutine
)

// Snippet is a node of the snippet AST (BPatch_snippet). Snippets are
// evaluated in the application's context when their point is reached.
type Snippet interface {
	eval(c *vm.Ctx) uint64
	cost() uint64
}

// ConstExpr is a constant operand (BPatch_constExpr).
type ConstExpr struct{ Val uint64 }

func (e ConstExpr) eval(*vm.Ctx) uint64 { return e.Val }
func (e ConstExpr) cost() uint64        { return ArgEvalCost }

// EffectiveAddressExpr evaluates to the effective address of the point
// instruction's memory operand (BPatch_effectiveAddressExpr).
type EffectiveAddressExpr struct{}

func (EffectiveAddressExpr) eval(c *vm.Ctx) uint64 { v, _ := c.MemAddr(); return v }
func (EffectiveAddressExpr) cost() uint64          { return ArgEvalCost }

// RetExpr evaluates to the function return value (BPatch_retExpr).
type RetExpr struct{}

func (RetExpr) eval(c *vm.Ctx) uint64 { return c.RetVal() }
func (RetExpr) cost() uint64          { return ArgEvalCost }

// ParamExpr evaluates to the n-th (1-based) call argument
// (BPatch_paramExpr).
type ParamExpr struct{ N int }

func (e ParamExpr) eval(c *vm.Ctx) uint64 { return c.CallArg(e.N) }
func (e ParamExpr) cost() uint64          { return ArgEvalCost }

// BranchTargetExpr evaluates to the resolved control-transfer target of
// the point instruction (for returns, the address about to be popped).
type BranchTargetExpr struct{}

func (BranchTargetExpr) eval(c *vm.Ctx) uint64 { v, _ := c.Target(); return v }
func (BranchTargetExpr) cost() uint64          { return ArgEvalCost }

// InstAddrExpr evaluates to the address of the point instruction
// (BPatch_originalAddressExpr).
type InstAddrExpr struct{}

func (InstAddrExpr) eval(c *vm.Ctx) uint64 {
	if in := c.Inst(); in != nil {
		return in.Addr
	}
	return 0
}
func (InstAddrExpr) cost() uint64 { return ArgEvalCost }

// RegExpr evaluates to the value of a machine register
// (BPatch_registerExpr).
type RegExpr struct{ Reg isa.Reg }

func (e RegExpr) eval(c *vm.Ctx) uint64 { return c.Reg(e.Reg) }
func (e RegExpr) cost() uint64          { return ArgEvalCost }

// FuncCallExpr calls an instrumentation function with evaluated arguments
// (BPatch_funcCallExpr). Cost is the callee body's work in cycle units.
type FuncCallExpr struct {
	Fn   func(args []uint64)
	Args []Snippet
	Cost uint64
	// Label identifies the call in observability reports (optional; the
	// Cinnamon backend sets it to the originating action).
	Label string
	// FastFn, when non-nil, is a specialized variant of Fn with
	// identical observable behavior that satisfies the vm.ProbeSpec
	// purity contract (never inserts snippets, never reads cycle
	// counts). The rewriter hands it to the VM's action-inlining layer.
	FastFn func(args []uint64)
	// CounterFlush, when non-nil, asserts that every invocation of the
	// call — for any argument values — is equivalent in all observables
	// to CounterFlush(CounterDelta). Such snippets are promoted to
	// block-local accumulators by the inline tier.
	CounterDelta int64
	CounterFlush func(n int64)
	// Sample, when > 1, arms each insertion of the snippet with a
	// sampling countdown baked into the trampoline: the call fires on
	// every Sample-th hit of that placement; swallowed hits cost only the
	// inlined gate (see vm.SampleGateCost).
	Sample uint64
	// Merged, when non-nil, marks a coalesced call: Fn (and the fast
	// surfaces) describe the fused execution of the constituent
	// snippets, while each Part is registered and attributed
	// separately — one report row per constituent, one trampoline
	// dispatch per part. Merged calls take no argument snippets and
	// are never sampled.
	Merged []Part
}

// Part is one constituent of a merged function-call snippet.
type Part struct {
	// Label identifies the constituent in observability reports.
	Label string
	// Cost is the constituent's body cost; its dispatch price is
	// SnippetCost plus this.
	Cost uint64
}

func (e FuncCallExpr) eval(c *vm.Ctx) uint64 {
	args := make([]uint64, len(e.Args))
	for n, a := range e.Args {
		args[n] = a.eval(c)
	}
	e.Fn(args)
	return 0
}

func (e FuncCallExpr) cost() uint64 {
	total := e.Cost
	for _, a := range e.Args {
		total += a.cost()
	}
	return total
}

// SequenceExpr evaluates snippets in order (BPatch_sequence).
type SequenceExpr struct{ Items []Snippet }

func (e SequenceExpr) eval(c *vm.Ctx) uint64 {
	var v uint64
	for _, it := range e.Items {
		v = it.eval(c)
	}
	return v
}

func (e SequenceExpr) cost() uint64 {
	var total uint64
	for _, it := range e.Items {
		total += it.cost()
	}
	return total
}

// Point is an instrumentation point (BPatch_point).
type Point struct {
	be *BinaryEdit
	// one of:
	instAddr  uint64 // instruction point (0 if not)
	blockAddr uint64 // block-entry point
	edge      [2]uint64
	isEdge    bool
}

// Loop is a natural loop handle (BPatch_basicBlockLoop).
type Loop struct {
	be   *BinaryEdit
	loop *cfg.Loop
}

// ID returns the loop's stable identifier.
func (l *Loop) ID() int { return l.loop.ID }

// EntryPoints returns points that fire when the loop is entered from
// outside.
func (l *Loop) EntryPoints() []*Point { return l.be.edgePoints(l.loop.Entries) }

// ExitPoints returns points that fire when the loop is left.
func (l *Loop) ExitPoints() []*Point { return l.be.edgePoints(l.loop.Exits) }

// IterPoints returns points that fire on each back-edge traversal.
func (l *Loop) IterPoints() []*Point { return l.be.edgePoints(l.loop.Backs) }

// BasicBlock is a basic-block handle (BPatch_basicBlock).
type BasicBlock struct {
	be    *BinaryEdit
	block *cfg.Block
}

// Address returns the block start address.
func (b *BasicBlock) Address() uint64 { return b.block.Start }

// Block exposes the underlying CFG block.
func (b *BasicBlock) Block() *cfg.Block { return b.block }

// EntryPoint returns the block-entry instrumentation point.
func (b *BasicBlock) EntryPoint() *Point {
	return &Point{be: b.be, blockAddr: b.block.Start}
}

// InstPoints returns one instruction point per instruction in the block.
func (b *BasicBlock) InstPoints() []*Point {
	out := make([]*Point, 0, len(b.block.Insts))
	for _, in := range b.block.Insts {
		out = append(out, &Point{be: b.be, instAddr: in.Addr})
	}
	return out
}

// Instructions returns the block's decoded instructions.
func (b *BasicBlock) Instructions() []*isa.Inst { return b.block.Insts }

// Function is a function handle (BPatch_function).
type Function struct {
	be *BinaryEdit
	fn *cfg.Func
}

// Name returns the function's symbol name.
func (f *Function) Name() string { return f.fn.Name }

// Address returns the function entry address.
func (f *Function) Address() uint64 { return f.fn.Entry }

// Func exposes the underlying CFG function.
func (f *Function) Func() *cfg.Func { return f.fn }

// FindPoint returns the function's points of the given class.
func (f *Function) FindPoint(loc ProcedureLocation) ([]*Point, error) {
	switch loc {
	case Entry:
		if len(f.fn.Blocks) == 0 {
			return nil, fmt.Errorf("dyninst: function %s has no code", f.fn.Name)
		}
		return []*Point{{be: f.be, blockAddr: f.fn.Blocks[0].Start}}, nil
	case Exit:
		var pts []*Point
		for _, b := range f.fn.Blocks {
			if b.Last().Op == isa.Return {
				pts = append(pts, &Point{be: f.be, instAddr: b.Last().Addr})
			}
		}
		return pts, nil
	case Subroutine:
		var pts []*Point
		for _, b := range f.fn.Blocks {
			for _, in := range b.Insts {
				if in.Op == isa.Call {
					pts = append(pts, &Point{be: f.be, instAddr: in.Addr})
				}
			}
		}
		return pts, nil
	}
	return nil, fmt.Errorf("dyninst: unknown point class %d", loc)
}

// Loops returns the function's natural loops.
func (f *Function) Loops() []*Loop {
	out := make([]*Loop, 0, len(f.fn.Loops))
	for _, l := range f.fn.Loops {
		out = append(out, &Loop{be: f.be, loop: l})
	}
	return out
}

// Blocks returns the function's basic blocks.
func (f *Function) Blocks() []*BasicBlock {
	out := make([]*BasicBlock, 0, len(f.fn.Blocks))
	for _, b := range f.fn.Blocks {
		out = append(out, &BasicBlock{be: f.be, block: b})
	}
	return out
}

// Image is the parsed view of the opened binary (BPatch_image). It covers
// only the main executable module — the rewriter does not touch shared
// libraries.
type Image struct {
	be *BinaryEdit
}

// FindFunction looks up a function by name in the executable image.
func (img *Image) FindFunction(name string) (*Function, error) {
	for _, f := range img.be.exe.Funcs {
		if f.Name == name {
			return &Function{be: img.be, fn: f}, nil
		}
	}
	return nil, fmt.Errorf("dyninst: function %q not found", name)
}

// Functions returns every function in the executable image.
func (img *Image) Functions() []*Function {
	out := make([]*Function, 0, len(img.be.exe.Funcs))
	for _, f := range img.be.exe.Funcs {
		out = append(out, &Function{be: img.be, fn: f})
	}
	return out
}

// InstPoint returns the instruction point at an address within the image.
func (img *Image) InstPoint(addr uint64) (*Point, error) {
	if img.be.prog.InstAt(addr) == nil {
		return nil, fmt.Errorf("dyninst: no instruction at %#x", addr)
	}
	return &Point{be: img.be, instAddr: addr}, nil
}

// BlockEntryPoint returns the entry point of the basic block starting at
// addr.
func (img *Image) BlockEntryPoint(addr uint64) (*Point, error) {
	if img.be.prog.BlockStarting(addr) == nil {
		return nil, fmt.Errorf("dyninst: no basic block starting at %#x", addr)
	}
	return &Point{be: img.be, blockAddr: addr}, nil
}

// CalledFunctionName returns the symbol name of the function (or runtime
// import) called by the direct call instruction at addr, or "" if the
// instruction is not a direct call or the target is unnamed
// (BPatch_point::getCalledFunction).
func (img *Image) CalledFunctionName(addr uint64) string {
	in := img.be.prog.InstAt(addr)
	if in == nil || in.Op != isa.Call {
		return ""
	}
	if tgt, ok := in.IsDirectTarget(); ok {
		return img.be.prog.Obj.NameAt(tgt)
	}
	return ""
}

// EdgePoint returns the point on the CFG edge between the blocks starting
// at from and to.
func (img *Image) EdgePoint(from, to uint64) (*Point, error) {
	if img.be.prog.BlockStarting(from) == nil || img.be.prog.BlockStarting(to) == nil {
		return nil, fmt.Errorf("dyninst: no CFG edge %#x -> %#x", from, to)
	}
	return &Point{be: img.be, isEdge: true, edge: [2]uint64{from, to}}, nil
}

type insertion struct {
	point   *Point
	when    CallWhen
	snippet Snippet
}

// BinaryEdit is an open-for-rewriting binary (BPatch_binaryEdit).
type BinaryEdit struct {
	prog       *cfg.Program
	exe        *cfg.Module
	insertions []insertion
	fuel       uint64
	appOut     io.Writer
	obs        *obs.Collector
	execMode   vm.ExecMode
	noInline   bool
	adaptive   bool
	onMachine  func(*vm.VM)
	stop       *atomic.Bool
	initFns    []func()
	finiFns    []func()
}

// Config parameterizes OpenBinary.
type Config struct {
	// Fuel bounds application instructions when the rewritten binary is
	// run (0 = default).
	Fuel uint64
	// AppOut receives the application's output (discarded if nil).
	AppOut io.Writer
	// Obs, when non-nil, collects per-probe attribution and rewrite-time
	// statistics for the session.
	Obs *obs.Collector
	// ExecMode selects the VM execution tier the rewritten binary runs
	// under (see vm.Config).
	ExecMode vm.ExecMode
	// NoInline disables the VM's action-inlining layer (see vm.Config).
	NoInline bool
	// Adaptive allocates a control block for every inserted snippet so
	// probes can be sampled, ejected and re-armed mid-run (see
	// vm.Config.Adaptive).
	Adaptive bool
	// OnMachine, when non-nil, is called with the rewritten binary's
	// machine before execution starts — the hook adaptive controllers
	// (the overhead governor) attach through.
	OnMachine func(*vm.VM)
	// Stop, when non-nil, is the cooperative cancellation flag handed to
	// the machine (see vm.Config.Stop).
	Stop *atomic.Bool
}

// OpenBinary parses the program's executable for rewriting. It fails,
// like real Dyninst on several SPEC benchmarks, when control-flow
// recovery is incomplete (unresolvable indirect jumps).
func OpenBinary(prog *cfg.Program, c Config) (*BinaryEdit, error) {
	exe := prog.Modules[0]
	if exe.Loaded.HasUnrecoverableControlFlow() {
		return nil, fmt.Errorf("dyninst: %s: control-flow recovery failed (unresolvable indirect jumps)", exe.Name())
	}
	for _, f := range exe.Funcs {
		if f.Imprecise {
			return nil, fmt.Errorf("dyninst: %s: imprecise control flow in %s", exe.Name(), f.Name)
		}
	}
	return &BinaryEdit{prog: prog, exe: exe, fuel: c.Fuel, appOut: c.AppOut, obs: c.Obs, execMode: c.ExecMode, noInline: c.NoInline, adaptive: c.Adaptive, onMachine: c.OnMachine, stop: c.Stop}, nil
}

// Image returns the parsed image.
func (be *BinaryEdit) Image() *Image { return &Image{be: be} }

func (be *BinaryEdit) edgePoints(edges []cfg.Edge) []*Point {
	out := make([]*Point, 0, len(edges))
	for _, e := range edges {
		out = append(out, &Point{be: be, isEdge: true, edge: [2]uint64{e.From.Start, e.To.Start}})
	}
	return out
}

// InsertSnippet records a snippet insertion at a point
// (BPatch_binaryEdit::insertSnippet). The rewrite is applied when Run
// writes out and executes the instrumented binary.
func (be *BinaryEdit) InsertSnippet(s Snippet, p *Point, when CallWhen) error {
	if p == nil {
		return fmt.Errorf("dyninst: nil point")
	}
	if p.instAddr == 0 && when == CallAfter {
		return fmt.Errorf("dyninst: callAfter is only valid at instruction points")
	}
	be.insertions = append(be.insertions, insertion{point: p, when: when, snippet: s})
	return nil
}

// OnInit registers a callback run before the rewritten binary starts
// (instrumented _init).
func (be *BinaryEdit) OnInit(fn func()) { be.initFns = append(be.initFns, fn) }

// OnFini registers a callback run after the rewritten binary exits
// (instrumented _fini).
func (be *BinaryEdit) OnFini(fn func()) { be.finiFns = append(be.finiFns, fn) }

// snippetSpec builds the vm.ProbeSpec for one insertion of the snippet
// (one spec per insertion: the VM owns accumulator state). Only a bare
// FuncCallExpr with an inline surface qualifies; the argument buffer is
// allocated once per insertion and reused across firings.
func snippetSpec(s Snippet) *vm.ProbeSpec {
	e, ok := s.(FuncCallExpr)
	if !ok {
		return nil
	}
	if e.CounterFlush != nil {
		return &vm.ProbeSpec{Counter: true, Delta: e.CounterDelta, Flush: e.CounterFlush}
	}
	if e.FastFn == nil {
		return nil
	}
	args := make([]uint64, len(e.Args))
	return &vm.ProbeSpec{Fn: func(c *vm.Ctx) {
		for n, a := range e.Args {
			args[n] = a.eval(c)
		}
		e.FastFn(args)
	}}
}

// snippetLabel extracts the report label of a snippet: the Label of the
// first FuncCallExpr found ("" for pure expression snippets).
func snippetLabel(s Snippet) string {
	switch e := s.(type) {
	case FuncCallExpr:
		return e.Label
	case SequenceExpr:
		for _, it := range e.Items {
			if l := snippetLabel(it); l != "" {
				return l
			}
		}
	}
	return ""
}

// snippetSample extracts the sampling stride of a snippet: the Sample of
// the first FuncCallExpr found (0 for pure expression snippets).
func snippetSample(s Snippet) uint64 {
	switch e := s.(type) {
	case FuncCallExpr:
		return e.Sample
	case SequenceExpr:
		for _, it := range e.Items {
			if n := snippetSample(it); n != 0 {
				return n
			}
		}
	}
	return 0
}

// Run "writes out" the rewritten binary and executes it: all insertions
// are baked in before the first instruction runs, and no translation cost
// is paid at run time.
func (be *BinaryEdit) Run() (*vm.Result, error) {
	machine := vm.New(be.prog, vm.Config{Fuel: be.fuel, AppOut: be.appOut, Obs: be.obs, ExecMode: be.execMode, NoInline: be.noInline, Adaptive: be.adaptive, Stop: be.stop})
	if be.onMachine != nil {
		be.onMachine(machine)
	}
	for _, ins := range be.insertions {
		s := ins.snippet
		cost := SnippetCost + s.cost()
		sample := snippetSample(s)
		fn := func(c *vm.Ctx) { s.eval(c) }
		spec := snippetSpec(s)
		var trigger string
		var addr uint64
		switch {
		case ins.point.isEdge:
			trigger, addr = obs.TriggerEdge, ins.point.edge[1]
		case ins.point.blockAddr != 0:
			trigger, addr = obs.TriggerBlockEntry, ins.point.blockAddr
		case ins.when == CallBefore:
			trigger, addr = obs.TriggerBefore, ins.point.instAddr
		default:
			trigger, addr = obs.TriggerAfter, ins.point.instAddr
		}
		if e, ok := s.(FuncCallExpr); ok && len(e.Merged) > 0 {
			// Coalesced call: one trampoline, one attribution row per
			// constituent part.
			shares := make([]vm.Share, len(e.Merged))
			for i, part := range e.Merged {
				pc := uint64(SnippetCost) + part.Cost
				pid := obs.NoProbe
				if be.obs != nil {
					be.obs.MutateBuild(func(b *obs.BuildStats) { b.Snippets++ })
					pid = be.obs.RegisterProbe(obs.ProbeMeta{
						Label:        part.Label,
						Trigger:      trigger,
						Mechanism:    obs.MechSnippet,
						Addr:         addr,
						DispatchCost: pc,
					})
				}
				shares[i] = vm.Share{ID: pid, Cost: pc}
			}
			var err error
			switch {
			case ins.point.isEdge:
				err = machine.AddEdgeCoalesced(ins.point.edge[0], ins.point.edge[1], shares, fn, spec)
			case ins.point.blockAddr != 0:
				err = machine.AddBlockEntryCoalesced(ins.point.blockAddr, shares, fn, spec)
			case ins.when == CallBefore:
				err = machine.AddBeforeCoalesced(ins.point.instAddr, shares, fn, spec)
			default:
				err = machine.AddAfterCoalesced(ins.point.instAddr, shares, fn, spec)
			}
			if err != nil {
				return nil, fmt.Errorf("dyninst: %w", err)
			}
			continue
		}
		id := obs.NoProbe
		if be.obs != nil {
			be.obs.MutateBuild(func(b *obs.BuildStats) { b.Snippets++ })
			id = be.obs.RegisterProbe(obs.ProbeMeta{
				Label:        snippetLabel(s),
				Trigger:      trigger,
				Mechanism:    obs.MechSnippet,
				Addr:         addr,
				DispatchCost: cost,
			})
		}
		var err error
		switch {
		case ins.point.isEdge:
			err = machine.AddEdgeSampled(ins.point.edge[0], ins.point.edge[1], cost, id, fn, spec, sample)
		case ins.point.blockAddr != 0:
			err = machine.AddBlockEntrySampled(ins.point.blockAddr, cost, id, fn, spec, sample)
		case ins.when == CallBefore:
			err = machine.AddBeforeSampled(ins.point.instAddr, cost, id, fn, spec, sample)
		default:
			err = machine.AddAfterSampled(ins.point.instAddr, cost, id, fn, spec, sample)
		}
		if err != nil {
			return nil, fmt.Errorf("dyninst: %w", err)
		}
	}
	for _, fn := range be.initFns {
		fn := fn
		machine.OnStart(func(*vm.Ctx) { fn() })
	}
	for _, fn := range be.finiFns {
		fn := fn
		machine.OnEnd(func(*vm.Ctx) { fn() })
	}
	return machine.Run()
}
