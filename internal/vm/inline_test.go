package vm

// Differential tests for the translated tier's action-inlining layer:
// specialized probe thunks, register-promoted counters and probe+op
// superinstructions must be bit-identical — counts, cycles, output,
// trap text, obs attribution, trace ring, fuel-exhaustion tail — to
// both the no-inline translated tier and the reference interpreter.
// They mirror translate_test.go's matrix with every probe carrying an
// inline spec (and deliberate mixed lists that force the generic path).

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obs"
)

// inlineCell is one execution configuration of the three-way
// differential: inlining on, inlining off, and the reference
// interpreter (where specs are ignored entirely).
type inlineCell struct {
	name     string
	mode     ExecMode
	noInline bool
}

var inlineCells = []inlineCell{
	{"inline", ExecTranslated, false},
	{"no-inline", ExecTranslated, true},
	{"interpreted", ExecInterpreted, false},
}

func runInlineCell(t *testing.T, prog *cfg.Program, cell inlineCell, fuel uint64,
	setup func(v *VM, fires map[string]int)) modeRun {
	t.Helper()
	var out bytes.Buffer
	v := New(prog, Config{ExecMode: cell.mode, NoInline: cell.noInline, AppOut: &out, Fuel: fuel})
	fires := map[string]int{}
	if setup != nil {
		setup(v, fires)
	}
	res, err := v.Run()
	mr := modeRun{out: out.String(), fires: fires, cycles: v.cycles}
	if err != nil {
		mr.err = err.Error()
	}
	mr.res = res
	return mr
}

// counterSpec returns a generic body and its promoted-counter spec: the
// body bumps the cell by delta per fire, the spec's Flush applies n
// accumulated bumps at once. Observably identical by the ProbeSpec
// contract.
func counterSpec(fires map[string]int, key string, delta int64) (ProbeFn, *ProbeSpec) {
	return func(c *Ctx) { fires[key] += int(delta) },
		&ProbeSpec{Counter: true, Delta: delta, Flush: func(n int64) { fires[key] += int(n) }}
}

// fastSpec returns a body used both generically and as the specialized
// thunk — the strongest form of the "observably identical" contract.
func fastSpec(fires map[string]int, key string) (ProbeFn, *ProbeSpec) {
	fn := func(c *Ctx) { fires[key]++ }
	return fn, &ProbeSpec{Fn: fn}
}

// specProbes installs the full mix of inline shapes on a program: a
// promoted counter and a generic body on the same instruction (mixed
// list — the promoted count must flush before the generic body can
// observe the cell), fully spec'd before+after lists on a store (the
// superinstruction-fusable shape), a pending call-after (never fused),
// and spec'd block-entry and edge probes.
func specProbes(t *testing.T, prog *cfg.Program) func(v *VM, fires map[string]int) {
	add := instByOp(t, prog, isa.Add, 0)
	store := findInst(prog, isa.Store, 0)
	call := findInst(prog, isa.Call, 0)
	blk := blockOf(t, prog, add.Addr)
	return func(v *VM, fires map[string]int) {
		must := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		fn, sp := counterSpec(fires, "add-count", 2)
		must(v.AddBeforeSpec(add.Addr, 3, obs.NoProbe, fn, sp))
		must(v.AddBefore(add.Addr, 1, func(c *Ctx) {
			// Generic body on the same list: a full observation point —
			// it reads the promoted cell, which must be flushed by now.
			fires["add-generic-saw"] = fires["add-count"]
			fires["add-generic"]++
		}))
		fn, sp = fastSpec(fires, "add-after")
		must(v.AddAfterSpec(add.Addr, 2, obs.NoProbe, fn, sp))
		if store != nil {
			fn, sp = counterSpec(fires, "store-count", 1)
			must(v.AddBeforeSpec(store.Addr, 2, obs.NoProbe, fn, sp))
			fn, sp = fastSpec(fires, "store-after")
			must(v.AddAfterSpec(store.Addr, 1, obs.NoProbe, fn, sp))
		}
		if call != nil {
			must(v.AddAfter(call.Addr, 4, func(c *Ctx) { fires["call-after"]++ }))
		}
		fn, sp = counterSpec(fires, "entry-count", 1)
		must(v.AddBlockEntrySpec(blk.Start, 1, obs.NoProbe, fn, sp))
		for _, pred := range blk.Preds {
			fn, sp := fastSpec(fires, fmt.Sprintf("edge-%x", pred.Start))
			must(v.AddEdgeSpec(pred.Start, blk.Start, 1, obs.NoProbe, fn, sp))
		}
		v.OnEnd(func(c *Ctx) {
			// End hooks run after the final flush: the promoted cells
			// must already hold their totals.
			fires["end-saw-add"] = fires["add-count"]
		})
	}
}

// TestInlineBitIdentical runs loops, calls, traps and fuel exhaustion
// with the full spec'd probe mix and demands byte-identical observables
// across inline, no-inline and interpreted cells.
func TestInlineBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		src  string
		fuel uint64
	}{
		{"sum", sumSrc, 0},
		{"calls", tierCallSrc, 0},
		{"trap", tierTrapSrc, 0},
		{"fuel", tierCallSrc, 37},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := build(t, c.src)
			setup := specProbes(t, prog)
			ref := runInlineCell(t, prog, inlineCells[len(inlineCells)-1], c.fuel, setup)
			for _, cell := range inlineCells[:len(inlineCells)-1] {
				got := runInlineCell(t, prog, cell, c.fuel, setup)
				diffModes(t, c.name+"/"+cell.name, got, ref)
			}
		})
	}
}

// TestInlineFuelParity sweeps every fuel value through exhaustion with
// promoted counters live: the flush at the fuel trap must leave the
// cells exactly where the interpreter leaves them, at every cut point.
func TestInlineFuelParity(t *testing.T) {
	prog := build(t, tierCallSrc)
	setup := specProbes(t, prog)
	full := runInlineCell(t, prog, inlineCells[len(inlineCells)-1], 0, setup)
	if full.err != "" {
		t.Fatal(full.err)
	}
	for fuel := uint64(1); fuel <= full.res.Insts+1; fuel++ {
		ref := runInlineCell(t, prog, inlineCells[len(inlineCells)-1], fuel, setup)
		for _, cell := range inlineCells[:len(inlineCells)-1] {
			got := runInlineCell(t, prog, cell, fuel, setup)
			diffModes(t, fmt.Sprintf("fuel=%d/%s", fuel, cell.name), got, ref)
		}
	}
}

// TestInlineMidRunInvalidation is TestMidRunCacheInvalidation with every
// probe spec'd: the translator hook of the nop block (first executed
// halfway through the run) installs promoted counters and fast thunks
// into the already-translated, currently-looping head block. The cached
// block program — including its fused superinstructions — must be
// invalidated and rebuilt with the new specs, bit-identically to both
// reference cells.
func TestInlineMidRunInvalidation(t *testing.T) {
	prog := build(t, invalidateSrc)
	add := instByOp(t, prog, isa.Add, 0)
	nop := instByOp(t, prog, isa.Nop, 0)
	headBlk := blockOf(t, prog, add.Addr)
	nopBlk := blockOf(t, prog, nop.Addr)

	setup := func(v *VM, fires map[string]int) {
		err := v.SetTranslator(func(b *cfg.Block) {
			fires["translate"]++
			if b.Start != nopBlk.Start {
				return
			}
			fn, sp := counterSpec(fires, "own-before", 1)
			if err := v.AddBeforeSpec(nop.Addr, 2, obs.NoProbe, fn, sp); err != nil {
				t.Error(err)
			}
			fn, sp = counterSpec(fires, "head-before", 1)
			if err := v.AddBeforeSpec(add.Addr, 3, obs.NoProbe, fn, sp); err != nil {
				t.Error(err)
			}
			fn, sp = fastSpec(fires, "head-after")
			if err := v.AddAfterSpec(add.Addr, 1, obs.NoProbe, fn, sp); err != nil {
				t.Error(err)
			}
			for _, pred := range headBlk.Preds {
				fn, sp := fastSpec(fires, "head-edge")
				if err := v.AddEdgeSpec(pred.Start, headBlk.Start, 1, obs.NoProbe, fn, sp); err != nil {
					t.Error(err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ref := runInlineCell(t, prog, inlineCells[len(inlineCells)-1], 0, setup)
	var inline modeRun
	for _, cell := range inlineCells[:len(inlineCells)-1] {
		got := runInlineCell(t, prog, cell, 0, setup)
		diffModes(t, "invalidate/"+cell.name, got, ref)
		if cell.name == "inline" {
			inline = got
		}
	}
	// The loop runs r1 = 1..10; the nop block first executes at r1 == 5.
	want := map[string]int{"own-before": 1, "head-before": 5, "head-after": 5}
	for k, n := range want {
		if inline.fires[k] != n {
			t.Errorf("fires[%s] = %d, want %d", k, inline.fires[k], n)
		}
	}
	if inline.fires["head-edge"] == 0 {
		t.Error("head edge probe never fired")
	}
}

// TestInlineMidBlockInstall installs, from a generic probe body, a
// promoted-counter after-probe on a later instruction of the same,
// currently-executing block. The running fused block program must be
// abandoned mid-flight and the new counter must still cover the very
// pass that installed it — with the accumulator flushing correctly at
// run end.
func TestInlineMidBlockInstall(t *testing.T) {
	prog := build(t, hotBlockSrc)
	mul := instByOp(t, prog, isa.Mul, 0)
	store := instByOp(t, prog, isa.Store, 0)

	setup := func(v *VM, fires map[string]int) {
		installed := false
		if err := v.AddBefore(mul.Addr, 2, func(c *Ctx) {
			fires["mul-before"]++
			if installed {
				return
			}
			installed = true
			fn, sp := counterSpec(fires, "store-after", 1)
			if err := v.AddAfterSpec(store.Addr, 1, obs.NoProbe, fn, sp); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	ref := runInlineCell(t, prog, inlineCells[len(inlineCells)-1], 0, setup)
	var inline modeRun
	for _, cell := range inlineCells[:len(inlineCells)-1] {
		got := runInlineCell(t, prog, cell, 0, setup)
		diffModes(t, "mid-block/"+cell.name, got, ref)
		if cell.name == "inline" {
			inline = got
		}
	}
	if inline.fires["store-after"] != inline.fires["mul-before"] {
		t.Errorf("store-after fired %d times, want %d (same pass as install)",
			inline.fires["store-after"], inline.fires["mul-before"])
	}
}

// TestInlineObsIdentical attaches a collector with a trace ring and
// compares the full observability report — per-probe fires and cycles,
// totals, and the event trace with its sequence numbers, PCs and costs
// — across the three cells. Promoted counters and fused thunks must
// attribute per-firing, in firing order, exactly like the generic loop.
func TestInlineObsIdentical(t *testing.T) {
	run := func(cell inlineCell) *obs.Stats {
		prog := build(t, tierCallSrc)
		add := instByOp(t, prog, isa.Add, 0)
		store := instByOp(t, prog, isa.Store, 0)
		col := obs.New(obs.Options{TraceCap: 16})
		cnt := col.RegisterProbe(obs.ProbeMeta{Label: "counter", Trigger: obs.TriggerBefore, Mechanism: obs.MechInlinedCall, Addr: add.Addr, DispatchCost: 3})
		fst := col.RegisterProbe(obs.ProbeMeta{Label: "fast", Trigger: obs.TriggerAfter, Mechanism: obs.MechInlinedCall, Addr: store.Addr, DispatchCost: 2})
		gen := col.RegisterProbe(obs.ProbeMeta{Label: "generic", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall, Addr: store.Addr, DispatchCost: 5})

		v := New(prog, Config{ExecMode: cell.mode, NoInline: cell.noInline, Obs: col})
		fires := map[string]int{}
		fn, sp := counterSpec(fires, "cnt", 1)
		if err := v.AddBeforeSpec(add.Addr, 3, cnt, fn, sp); err != nil {
			t.Fatal(err)
		}
		fn, sp = fastSpec(fires, "fast")
		if err := v.AddAfterSpec(store.Addr, 2, fst, fn, sp); err != nil {
			t.Fatal(err)
		}
		if err := v.AddBeforeObs(store.Addr, 5, gen, func(c *Ctx) {}); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			t.Fatal(err)
		}
		return col.Snapshot("test")
	}
	ref := run(inlineCells[len(inlineCells)-1])
	for _, cell := range inlineCells[:len(inlineCells)-1] {
		got := run(cell)
		if !reflect.DeepEqual(got.Probes, ref.Probes) {
			t.Errorf("%s: probe stats %+v vs interpreted %+v", cell.name, got.Probes, ref.Probes)
		}
		if got.TotalFires != ref.TotalFires || got.ProbeCycles != ref.ProbeCycles ||
			got.UntrackedFires != ref.UntrackedFires || got.UntrackedCycles != ref.UntrackedCycles {
			t.Errorf("%s: totals fires=%d/%d cycles=%d/%d untracked=%d/%d",
				cell.name, got.TotalFires, ref.TotalFires, got.ProbeCycles, ref.ProbeCycles,
				got.UntrackedFires, ref.UntrackedFires)
		}
		if !reflect.DeepEqual(got.Trace, ref.Trace) {
			t.Errorf("%s: trace ring diverges:\n  got  %+v\n  want %+v", cell.name, got.Trace, ref.Trace)
		}
	}
}
