package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCLIDoc = flag.Bool("update-cli-doc", false, "rewrite docs/CLI.md from the flag table")

func cliDocPath(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("..", "..", "docs", "CLI.md"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCLIDocCurrent regenerates docs/CLI.md from the flag registry and
// compares it to the committed copy, so the CLI reference cannot drift
// from the flags. Refresh with:
//
//	go test ./cmd/cinnamon -update-cli-doc
func TestCLIDocCurrent(t *testing.T) {
	want := renderCLIMD()
	path := cliDocPath(t)
	if *updateCLIDoc {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("docs/CLI.md unreadable (regenerate with -update-cli-doc): %v", err)
	}
	if string(got) != want {
		t.Fatalf("docs/CLI.md is stale: regenerate with `go test ./cmd/cinnamon -update-cli-doc`")
	}
}

// Every flag must belong to a declared group and carry help text, and
// the grouped usage must mention every flag exactly once.
func TestFlagTableComplete(t *testing.T) {
	groups := map[string]bool{}
	for _, g := range flagGroups {
		groups[g] = true
	}
	seen := map[string]bool{}
	for _, d := range flagDefs {
		if !groups[d.Group] {
			t.Errorf("flag -%s has undeclared group %q", d.Name, d.Group)
		}
		if d.Help == "" {
			t.Errorf("flag -%s has no help text", d.Name)
		}
		if seen[d.Name] {
			t.Errorf("flag -%s recorded twice", d.Name)
		}
		seen[d.Name] = true
	}
	// The registry and the flag set must agree (a flag declared with
	// cli.String directly would bypass the table and vanish from docs).
	n := 0
	cli.VisitAll(func(f *flag.Flag) {
		n++
		if !seen[f.Name] {
			t.Errorf("flag -%s is registered but not in the flag table", f.Name)
		}
	})
	if n != len(flagDefs) {
		t.Errorf("flag set has %d flags, table has %d", n, len(flagDefs))
	}
	var b strings.Builder
	usage(&b)
	for name := range seen {
		if !strings.Contains(b.String(), "-"+name) {
			t.Errorf("usage output does not mention -%s", name)
		}
	}
}
