package vm

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, paged 64-bit address space. Pages are allocated
// lazily on first access, so loads from untouched memory read zero — the
// machine is deliberately permissive, because the monitoring case studies
// (shadow stack, use-after-free) rely on the hardware happily performing
// the accesses that the tools are meant to detect.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	// One-entry cache of the last page touched; instruction streams and
	// stack traffic are strongly local.
	lastKey  uint64
	lastPage *[pageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64) *[pageSize]byte {
	key := addr >> pageShift
	if m.lastPage != nil && m.lastKey == key {
		return m.lastPage
	}
	p := m.pages[key]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	m.lastKey, m.lastPage = key, p
	return p
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) byte {
	return m.page(addr)[addr&pageMask]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr)[addr&pageMask] = v
}

// Read64 reads a little-endian 64-bit word.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & pageMask
	if off <= pageSize-8 {
		p := m.page(addr)
		return uint64(p[off]) | uint64(p[off+1])<<8 | uint64(p[off+2])<<16 | uint64(p[off+3])<<24 |
			uint64(p[off+4])<<32 | uint64(p[off+5])<<40 | uint64(p[off+6])<<48 | uint64(p[off+7])<<56
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit word.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & pageMask
	if off <= pageSize-8 {
		p := m.page(addr)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		p[off+4] = byte(v >> 32)
		p[off+5] = byte(v >> 40)
		p[off+6] = byte(v >> 48)
		p[off+7] = byte(v >> 56)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.Write8(addr+uint64(i), c)
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint64(i))
	}
	return out
}
