package value

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestCoercions(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
	}{
		{IntVal(-7), -7},
		{UintVal(7), 7},
		{BoolVal(true), 1},
		{BoolVal(false), 0},
		{StrVal("123"), 123},
		{StrVal("0x10"), 16},
		{StrVal("junk"), 0},
		{Null, 0},
		{OpcodeVal(isa.Load), int64(isa.Load)},
	}
	for _, c := range cases {
		if got := c.v.AsInt(); got != c.want {
			t.Errorf("AsInt(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	bools := []struct {
		v    Value
		want bool
	}{
		{IntVal(0), false}, {IntVal(3), true},
		{BoolVal(true), true}, {Null, false},
		{StrVal(""), false}, {StrVal("x"), true},
	}
	for _, c := range bools {
		if got := c.v.AsBool(); got != c.want {
			t.Errorf("AsBool(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	// NULL equals NULL, numeric zero and the empty string — the rule
	// Figure 7's missing-dict-entry test depends on.
	if !Equal(Null, Null) || !Equal(Null, IntVal(0)) || !Equal(IntVal(0), Null) {
		t.Error("NULL/zero equality broken")
	}
	if !Equal(Null, StrVal("")) || Equal(Null, StrVal("x")) || Equal(Null, IntVal(5)) {
		t.Error("NULL/string equality broken")
	}
	if !Equal(Null, BoolVal(false)) || Equal(Null, BoolVal(true)) {
		t.Error("NULL/bool equality broken")
	}
	if !Equal(StrVal("a"), StrVal("a")) || Equal(StrVal("a"), StrVal("b")) {
		t.Error("string equality broken")
	}
	if !Equal(OpcodeVal(isa.Load), OpcodeVal(isa.Load)) || Equal(OpcodeVal(isa.Load), OpcodeVal(isa.Store)) {
		t.Error("opcode equality broken")
	}
	if !Equal(IntVal(5), UintVal(5)) {
		t.Error("numeric equality broken")
	}
}

func TestDictSemantics(t *testing.T) {
	d := NewDict(IntVal(0))
	if d.Has(IntVal(1)) || d.Len() != 0 {
		t.Error("fresh dict not empty")
	}
	// Missing keys return the element zero value.
	if got := d.Get(IntVal(9)); got.Kind != KInt || got.Int != 0 {
		t.Errorf("missing key = %v", got)
	}
	d.Set(IntVal(9), IntVal(42))
	if got := d.Get(IntVal(9)); got.Int != 42 {
		t.Errorf("get = %v", got)
	}
	if !d.Has(IntVal(9)) || d.Len() != 1 {
		t.Error("has/len wrong")
	}
	// String keys coexist with numeric ones.
	d.Set(StrVal("k"), IntVal(7))
	if d.Get(StrVal("k")).Int != 7 || d.Len() != 2 {
		t.Error("string keys broken")
	}
	// Numeric keys compare by value regardless of original kind.
	d.Set(UintVal(100), IntVal(1))
	if d.Get(IntVal(100)).Int != 1 {
		t.Error("key normalization broken")
	}
}

func TestQuickDictMatchesGoMap(t *testing.T) {
	f := func(keys []int64, vals []int64) bool {
		d := NewDict(IntVal(0))
		ref := map[int64]int64{}
		for i, k := range keys {
			v := int64(i)
			if i < len(vals) {
				v = vals[i]
			}
			d.Set(IntVal(k), IntVal(v))
			ref[k] = v
		}
		if d.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if d.Get(IntVal(k)).Int != v || !d.Has(IntVal(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVector(t *testing.T) {
	v := &VectorVal{}
	v.Add(IntVal(1))
	v.Add(StrVal("10"))
	if !v.Has(IntVal(1)) || v.Has(IntVal(2)) {
		t.Error("has broken")
	}
	// Numeric comparison lets a line "10" match the address 10 — the
	// Figure 9 coercion.
	if !v.Has(IntVal(10)) {
		t.Error("line/number comparison broken")
	}
	if v.Get(0).Int != 1 || v.Get(5).Kind != KNull || v.Get(-1).Kind != KNull {
		t.Error("get broken")
	}
}

func TestFile(t *testing.T) {
	f := &FileVal{Name: "t.txt"}
	if f.GetLine().Kind != KNull {
		t.Error("empty file should return NULL")
	}
	f.WriteLine("a")
	f.WriteLine("b")
	if f.GetLine().Str != "a" || f.GetLine().Str != "b" {
		t.Error("line order wrong")
	}
	if f.GetLine().Kind != KNull {
		t.Error("EOF should return NULL")
	}
	// Writes after EOF are readable.
	f.WriteLine("c")
	if f.GetLine().Str != "c" {
		t.Error("write-after-read broken")
	}
}

func TestCopySemantics(t *testing.T) {
	d := NewDict(IntVal(0))
	d.Set(IntVal(1), IntVal(2))
	orig := Value{Kind: KDict, Dict: d}
	cp := Copy(orig)
	d.Set(IntVal(1), IntVal(99))
	if cp.Dict.Get(IntVal(1)).Int != 2 {
		t.Error("dict copy not deep")
	}
	vec := &VectorVal{Elems: []Value{IntVal(1)}}
	cpv := Copy(Value{Kind: KVector, Vec: vec})
	vec.Elems[0] = IntVal(9)
	if cpv.Vec.Elems[0].Int != 1 {
		t.Error("vector copy not deep")
	}
	arr := &ArrayVal{Elems: []Value{IntVal(1)}}
	cpa := Copy(Value{Kind: KArray, Arr: arr})
	arr.Elems[0] = IntVal(9)
	if cpa.Arr.Elems[0].Int != 1 {
		t.Error("array copy not deep")
	}
	// Scalars copy trivially.
	if Copy(IntVal(5)).Int != 5 {
		t.Error("scalar copy broken")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(-3), "-3"},
		{BoolVal(true), "true"},
		{StrVal("hi"), "hi"},
		{Null, "NULL"},
		{OpcodeVal(isa.Load), "load"},
		{OperandVal(isa.RegOp(isa.R3)), "r3"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}
