// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI):
//
//   - Table I   — code lengths of the five use cases in Cinnamon versus
//     native Dyninst, Janus and Pin implementations;
//   - Figure 12 — load-instruction counts reported by the same Cinnamon
//     counting program targeted at each backend, across the synthetic
//     SPEC CPU 2017 suite;
//   - Figure 13 — run-time overhead of the Cinnamon-generated
//     basic-block counting tool versus the hand-written native tool, per
//     framework and benchmark;
//   - the Section VI-D text numbers — Pin overheads of the use-after-free
//     and forward-CFI monitors.
//
// All measurements are deterministic cycle-unit counts from the VM's cost
// model; see DESIGN.md for the substitution rationale.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/bench/native"
	"repro/internal/cfg"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/obj"
	"repro/internal/progs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Frameworks in the paper's column order.
var Frameworks = []string{backend.Dyninst, backend.Janus, backend.Pin}

// BuildBenchmark assembles and loads one suite benchmark at the given
// scale. The returned program is reusable across instrumented runs.
func BuildBenchmark(spec workload.Spec, scale float64) (*cfg.Program, error) {
	mods, err := spec.Build(scale)
	if err != nil {
		return nil, err
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		return nil, err
	}
	return cfg.Build(p)
}

func compileTool(name string) (*engine.CompiledTool, error) {
	return engine.Compile(progs.MustSource(name))
}

// ---------------------------------------------------------------------------
// Table I — code lengths

// Table1Row is one use case's line counts (-1 = not implementable).
type Table1Row struct {
	UseCase  string
	Cinnamon int
	Dyninst  int
	Janus    int
	Pin      int
}

// table1Cases maps Table I rows to program and native-tool names.
var table1Cases = []struct{ label, prog, nativeName string }{
	{"Inst count", progs.InstCountBasic, "instcount"},
	{"Loop coverage", progs.LoopCoverage, "loopcoverage"},
	{"Use-after-free", progs.UseAfterFree, "useafterfree"},
	{"Shadow stack", progs.ShadowStack, "shadowstack"},
	{"Forward CFI", progs.ForwardCFI, "forwardcfi"},
}

// Table1 computes the code-length comparison. Cinnamon counts are
// non-blank, non-comment .cin lines; native counts are non-blank,
// non-comment Go lines of the corresponding tool.
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, len(table1Cases))
	for _, c := range table1Cases {
		row := Table1Row{
			UseCase:  c.label,
			Cinnamon: progs.CountLines(progs.MustSource(c.prog)),
		}
		count := func(framework string) int {
			src, err := native.Source(framework, c.nativeName)
			if err != nil {
				return -1
			}
			return countGoLines(src)
		}
		row.Dyninst = count("dyninst")
		row.Janus = count("janus")
		row.Pin = count("pin")
		rows = append(rows, row)
	}
	return rows
}

// countGoLines counts non-blank, non-comment Go source lines.
func countGoLines(src string) int {
	n := 0
	inBlock := false
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if inBlock {
			if i := strings.Index(line, "*/"); i >= 0 {
				line = strings.TrimSpace(line[i+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if i := strings.Index(line, "/*"); i >= 0 {
			line = strings.TrimSpace(line[:i])
			inBlock = true
		}
		if line != "" {
			n++
		}
	}
	return n
}

// FormatTable1 renders the table like the paper's Table I.
func FormatTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-16s %10s %10s %10s %10s\n", "Use case", "Cinnamon", "Dyninst", "Janus", "Pin")
	cell := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10s %10s %10s %10s\n", r.UseCase, cell(r.Cinnamon), cell(r.Dyninst), cell(r.Janus), cell(r.Pin))
	}
}

// ---------------------------------------------------------------------------
// Figure 12 — load-instruction counts per backend

// Fig12Row is one benchmark's counts (-1 = the backend failed to process
// the binary, as Dyninst does on several benchmarks).
type Fig12Row struct {
	Benchmark string
	Counts    map[string]int64
}

// Fig12 runs the Cinnamon instruction-counting program (Figure 5a) on
// every suite benchmark under every backend and reports the counts. The
// (benchmark × framework) cells run on a worker pool; each cell builds
// its own copy of the workload so the runs share only the compiled tool.
func Fig12(scale float64) ([]Fig12Row, error) {
	tool, err := compileTool(progs.InstCountBasic)
	if err != nil {
		return nil, err
	}
	tasks := fwTasks()
	counts, err := parMap(tasks, func(t fwTask) (int64, error) {
		prog, err := BuildBenchmark(t.spec, scale)
		if err != nil {
			return 0, err
		}
		var out strings.Builder
		if _, err := backend.Run(tool, prog, t.fw, backend.Options{Out: &out}); err != nil {
			return -1, nil
		}
		var n int64
		fmt.Sscanf(out.String(), "%d", &n)
		return n, nil
	})
	if err != nil {
		return nil, err
	}
	specs := workload.SPEC2017()
	rows := make([]Fig12Row, len(specs))
	for i, spec := range specs {
		rows[i] = Fig12Row{Benchmark: spec.Name, Counts: make(map[string]int64)}
		for j, fw := range Frameworks {
			rows[i].Counts[fw] = counts[i*len(Frameworks)+j]
		}
	}
	return rows, nil
}

// FormatFig12 renders the per-backend counts.
func FormatFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "%-12s %14s %14s %14s %10s\n", "Benchmark", "Dyninst", "Janus", "Pin", "Pin/Janus")
	for _, r := range rows {
		cell := func(fw string) string {
			if r.Counts[fw] < 0 {
				return "FAIL"
			}
			return fmt.Sprintf("%d", r.Counts[fw])
		}
		ratio := "-"
		if r.Counts[backend.Pin] > 0 && r.Counts[backend.Janus] > 0 {
			ratio = fmt.Sprintf("%.2f", float64(r.Counts[backend.Pin])/float64(r.Counts[backend.Janus]))
		}
		fmt.Fprintf(w, "%-12s %14s %14s %14s %10s\n", r.Benchmark, cell(backend.Dyninst), cell(backend.Janus), cell(backend.Pin), ratio)
	}
}

// ---------------------------------------------------------------------------
// Figure 13 — Cinnamon vs native overhead, bb-count tool

// Fig13Row is one benchmark's per-framework overhead percentages
// (NaN = the framework failed to process the binary).
type Fig13Row struct {
	Benchmark string
	Overhead  map[string]float64
}

// Fig13 measures, for every benchmark and framework, the cycle overhead
// of the Cinnamon-generated basic-block counting tool (Figure 5b)
// relative to the native tool hand-written against the same framework.
// Cells run concurrently; workload generation is deterministic, so the
// per-cell rebuild yields the same program — and the same cycle counts —
// the former shared build did.
func Fig13(scale float64) ([]Fig13Row, error) {
	tool, err := compileTool(progs.InstCountBB)
	if err != nil {
		return nil, err
	}
	tasks := fwTasks()
	overheads, err := parMap(tasks, func(t fwTask) (float64, error) {
		prog, err := BuildBenchmark(t.spec, scale)
		if err != nil {
			return 0, err
		}
		cres, err := backend.Run(tool, prog, t.fw, backend.Options{Out: io.Discard})
		if err != nil {
			return math.NaN(), nil
		}
		nres, err := native.Run(t.fw, "instcount_bb", prog, io.Discard, 0)
		if err != nil {
			return math.NaN(), nil
		}
		return overheadPct(cres.Cycles, nres.Cycles), nil
	})
	if err != nil {
		return nil, err
	}
	specs := workload.SPEC2017()
	rows := make([]Fig13Row, len(specs))
	for i, spec := range specs {
		rows[i] = Fig13Row{Benchmark: spec.Name, Overhead: make(map[string]float64)}
		for j, fw := range Frameworks {
			rows[i].Overhead[fw] = overheads[i*len(Frameworks)+j]
		}
	}
	return rows, nil
}

func overheadPct(cinnamon, nativeCycles uint64) float64 {
	return (float64(cinnamon) - float64(nativeCycles)) / float64(nativeCycles) * 100
}

// Summary aggregates overhead rows into per-framework mean and max over
// the benchmarks each framework could run.
type Summary struct {
	Mean, Max float64
	N         int
}

// Summarize computes per-framework summaries of Figure 13 rows.
func Summarize(rows []Fig13Row) map[string]Summary {
	out := make(map[string]Summary)
	for _, fw := range Frameworks {
		var sum, maxv float64
		n := 0
		for _, r := range rows {
			v := r.Overhead[fw]
			if math.IsNaN(v) {
				continue
			}
			sum += v
			if v > maxv {
				maxv = v
			}
			n++
		}
		s := Summary{N: n}
		if n > 0 {
			s.Mean = sum / float64(n)
			s.Max = maxv
		}
		out[fw] = s
	}
	return out
}

// FormatFig13 renders the overhead table plus per-framework averages,
// with the paper's measured averages alongside.
func FormatFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "Benchmark", "Dyninst", "Janus", "Pin")
	for _, r := range rows {
		cell := func(fw string) string {
			v := r.Overhead[fw]
			if math.IsNaN(v) {
				return "FAIL"
			}
			return fmt.Sprintf("%.2f%%", v)
		}
		fmt.Fprintf(w, "%-12s %10s %10s %10s\n", r.Benchmark, cell(backend.Dyninst), cell(backend.Janus), cell(backend.Pin))
	}
	sums := Summarize(rows)
	fmt.Fprintf(w, "%-12s %9.2f%% %9.2f%% %9.2f%%   (paper: 0.67%%, 1.88%%, 4.75%%)\n", "average",
		sums[backend.Dyninst].Mean, sums[backend.Janus].Mean, sums[backend.Pin].Mean)
}

// ---------------------------------------------------------------------------
// Section VI-D — Pin overheads of the monitoring tools

// PinToolRow summarizes one monitoring tool's Cinnamon-vs-native overhead
// on Pin across the suite.
type PinToolRow struct {
	Tool     string
	Mean     float64
	Max      float64
	PaperAvg float64
	PaperMax float64
}

// PinToolOverheads measures the use-after-free and forward-CFI monitors
// (Figures 7 and 9) on Pin, Cinnamon-generated versus native, across the
// suite — the Section VI-D numbers.
func PinToolOverheads(scale float64) ([]PinToolRow, error) {
	cases := []struct {
		label, prog, nativeName string
		paperAvg, paperMax      float64
	}{
		{"use-after-free", progs.UseAfterFree, "useafterfree", 0.52, 1.78},
		{"forward CFI", progs.ForwardCFI, "forwardcfi", 3.06, 11.0},
	}
	tools := make([]*engine.CompiledTool, len(cases))
	for i, c := range cases {
		tool, err := compileTool(c.prog)
		if err != nil {
			return nil, err
		}
		tools[i] = tool
	}
	// One task per (monitor, benchmark) cell, case-major like the former
	// nested loops; the reduction below folds them back per case.
	specs := workload.SPEC2017()
	type task struct {
		caseIdx int
		spec    workload.Spec
	}
	tasks := make([]task, 0, len(cases)*len(specs))
	for i := range cases {
		for _, spec := range specs {
			tasks = append(tasks, task{caseIdx: i, spec: spec})
		}
	}
	vals, err := parMap(tasks, func(t task) (float64, error) {
		prog, err := BuildBenchmark(t.spec, scale)
		if err != nil {
			return 0, err
		}
		cres, err := backend.Run(tools[t.caseIdx], prog, backend.Pin, backend.Options{Out: io.Discard})
		if err != nil {
			return 0, err
		}
		nres, err := native.Run("pin", cases[t.caseIdx].nativeName, prog, io.Discard, 0)
		if err != nil {
			return 0, err
		}
		return overheadPct(cres.Cycles, nres.Cycles), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []PinToolRow
	for i, c := range cases {
		var sum, maxv float64
		for _, v := range vals[i*len(specs) : (i+1)*len(specs)] {
			sum += v
			if v > maxv {
				maxv = v
			}
		}
		rows = append(rows, PinToolRow{
			Tool: c.label, Mean: sum / float64(len(specs)), Max: maxv,
			PaperAvg: c.paperAvg, PaperMax: c.paperMax,
		})
	}
	return rows, nil
}

// FormatPinTools renders the Section VI-D comparison.
func FormatPinTools(w io.Writer, rows []PinToolRow) {
	fmt.Fprintf(w, "%-16s %10s %10s %16s %16s\n", "Tool (on Pin)", "avg", "max", "paper avg", "paper max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %9.2f%% %9.2f%% %15.2f%% %15.2f%%\n", r.Tool, r.Mean, r.Max, r.PaperAvg, r.PaperMax)
	}
}

// ---------------------------------------------------------------------------
// Shared-library gap helper (the Figure 12 anomaly check)

// SharedLibGap returns the benchmarks whose Pin count exceeds the static
// backends' by more than 5%, sorted.
func SharedLibGap(rows []Fig12Row) []string {
	var out []string
	for _, r := range rows {
		pinN, janusN := r.Counts[backend.Pin], r.Counts[backend.Janus]
		if pinN > 0 && janusN > 0 && float64(pinN) > 1.05*float64(janusN) {
			out = append(out, r.Benchmark)
		}
	}
	sort.Strings(out)
	return out
}

// engineCompile compiles inline Cinnamon source (for ablation tools that
// are not part of the case-study set).
func engineCompile(src string) (*engine.CompiledTool, error) { return engine.Compile(src) }

// backendRun and nativeRun are thin seams for tests.
func backendRun(tool *engine.CompiledTool, prog *cfg.Program, fw string, out io.Writer) (*vm.Result, error) {
	return backend.Run(tool, prog, fw, backend.Options{Out: out})
}

func nativeRun(fw, usecase string, prog *cfg.Program, out io.Writer) (*vm.Result, error) {
	return native.Run(fw, usecase, prog, out, 0)
}
