// Package isa defines the instruction set architecture of the synthetic
// 64-bit machine that every other subsystem in this repository targets.
//
// The ISA is a RISC-like, variable-length-encoded instruction set whose
// opcode vocabulary deliberately mirrors the opcode abstraction exposed by
// the Cinnamon language (Call, Mov, Load, Store, Branch, Return, Add, Sub,
// Mul, Div, GetPtr). It stands in for x86-64 in the original paper: Cinnamon
// abstracts the concrete ISA behind opcodes and storage types, so any
// encodable ISA exercises the same decode, control-flow-recovery and
// operand-attribute code paths.
//
// Machine model:
//
//   - 18 registers: r0..r15 general purpose, sp (stack pointer) and fp
//     (frame pointer). By convention r0 carries return values, r1..r6 carry
//     the first six call arguments.
//   - 64-bit words, little-endian memory.
//   - A real in-memory call stack: Call pushes the return address at [sp-8]
//     and decrements sp; Return pops it. This makes stack-smashing attacks
//     (and therefore shadow-stack monitoring) expressible.
package isa

import "fmt"

// Reg identifies a machine register.
type Reg uint8

// Register names. R0..R15 are general purpose; SP and FP are the stack and
// frame pointers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	SP
	FP

	// NumRegs is the size of the architectural register file.
	NumRegs = 18
)

// RetReg is the register that carries a function's return value.
const RetReg = R0

// ArgReg returns the register carrying call argument i (1-based, up to
// MaxArgRegs). It panics if i is out of range.
func ArgReg(i int) Reg {
	if i < 1 || i > MaxArgRegs {
		panic(fmt.Sprintf("isa: argument register index %d out of range [1,%d]", i, MaxArgRegs))
	}
	return Reg(i) // r1..r6
}

// MaxArgRegs is the number of register-passed call arguments.
const MaxArgRegs = 6

var regNames = [NumRegs]string{
	"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
	"sp", "fp",
}

// String returns the assembler name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// RegByName maps an assembler register name to its Reg. The second result
// reports whether the name is known.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. The control-transfer group (Branch, Call, Return) matches the
// Cinnamon opcode abstraction: conditional, unconditional and indirect
// branches all carry opcode Branch, and direct/indirect calls both carry
// Call.
const (
	Nop Op = iota
	// Mov rd, rs|imm — register or immediate move.
	Mov
	// Load rd, [rb+off] — 64-bit load from memory.
	Load
	// Store rs, [rb+off] — 64-bit store to memory.
	Store
	// Add/Sub/Mul/Div/Rem rd, rs, rt|imm — integer arithmetic. Div and Rem
	// trap on a zero divisor.
	Add
	Sub
	Mul
	Div
	Rem
	// And/Or/Xor/Shl/Shr rd, rs, rt|imm — bitwise operations.
	And
	Or
	Xor
	Shl
	Shr
	// GetPtr rd, rb, ri, imm — address arithmetic (rd = rb + ri + imm),
	// the ISA's analogue of x86 LEA / LLVM getelementptr.
	GetPtr
	// Branch — control transfer within a function. Direct form takes an
	// immediate absolute target; the indirect form takes a register.
	// Conditional forms compare two register operands under Cond.
	Branch
	// Call — function call. Direct form takes an immediate absolute target,
	// indirect form a register. Pushes the return address on the stack.
	Call
	// Return — pops the return address from the stack and jumps to it.
	Return
	// Halt — stops the machine (end of program).
	Halt

	numOps
)

var opNames = [numOps]string{
	Nop:    "nop",
	Mov:    "mov",
	Load:   "load",
	Store:  "store",
	Add:    "add",
	Sub:    "sub",
	Mul:    "mul",
	Div:    "div",
	Rem:    "rem",
	And:    "and",
	Or:     "or",
	Xor:    "xor",
	Shl:    "shl",
	Shr:    "shr",
	GetPtr: "getptr",
	Branch: "branch",
	Call:   "call",
	Return: "ret",
	Halt:   "halt",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// OpByName maps an assembler mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name && n != "" {
			return Op(i), true
		}
	}
	return 0, false
}

// IsControlFlow reports whether the opcode transfers control.
func (o Op) IsControlFlow() bool {
	switch o {
	case Branch, Call, Return, Halt:
		return true
	}
	return false
}

// IsMemAccess reports whether the opcode reads or writes data memory.
func (o Op) IsMemAccess() bool { return o == Load || o == Store }

// IsArith reports whether the opcode is an ALU operation (including moves
// and address arithmetic).
func (o Op) IsArith() bool {
	switch o {
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, GetPtr, Mov:
		return true
	}
	return false
}

// Cond is a branch condition. Comparisons are signed.
type Cond uint8

// Branch conditions. Always makes the branch unconditional.
const (
	Always Cond = iota
	EQ
	NE
	LT
	LE
	GT
	GE

	numConds
)

var condNames = [numConds]string{"", "eq", "ne", "lt", "le", "gt", "ge"}

// String returns the condition suffix used in assembler mnemonics
// ("" for Always).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond?%d", uint8(c))
}

// Valid reports whether c is a defined condition.
func (c Cond) Valid() bool { return c < numConds }

// Holds evaluates the condition for the signed comparison a ? b.
func (c Cond) Holds(a, b int64) bool {
	switch c {
	case Always:
		return true
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}
