package isa

import (
	"fmt"
	"strings"
)

// OperandKind classifies an instruction operand. It corresponds directly to
// the Cinnamon storage abstractions mem, reg and const that programs test
// with the IsType builtin.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	// KindReg is a register operand.
	KindReg
	// KindImm is an immediate (constant) operand. For direct Branch and
	// Call instructions the immediate holds the absolute target address
	// after relocation.
	KindImm
	// KindMem is a memory operand of the form [base+off].
	KindMem

	numKinds
)

var kindNames = [numKinds]string{"none", "reg", "imm", "mem"}

// String returns the lower-case kind name ("reg", "imm", "mem").
func (k OperandKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind?%d", uint8(k))
}

// Valid reports whether k is a defined operand kind.
func (k OperandKind) Valid() bool { return k > KindNone && k < numKinds }

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind
	// Reg is the register for KindReg operands.
	Reg Reg
	// Imm is the immediate value for KindImm operands (absolute target
	// address for direct control transfers).
	Imm int64
	// Base and Off describe a KindMem operand: the effective address is
	// the value of Base plus Off.
	Base Reg
	Off  int64
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp returns a memory operand [base+off].
func MemOp(base Reg, off int64) Operand { return Operand{Kind: KindMem, Base: base, Off: off} }

// String renders the operand in assembler syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		if o.Off == 0 {
			return fmt.Sprintf("[%s]", o.Base)
		}
		return fmt.Sprintf("[%s%+d]", o.Base, o.Off)
	}
	return "<none>"
}

// Inst is a decoded machine instruction.
type Inst struct {
	// Addr is the absolute address the instruction was decoded from
	// (zero for instructions that have not been placed yet).
	Addr uint64
	// Size is the encoded size in bytes (zero until encoded or decoded).
	Size uint32
	// Op is the opcode and Cond the branch condition (Always except for
	// conditional branches).
	Op   Op
	Cond Cond
	// Ops are the operands in semantic order, destination first:
	//
	//	Mov     rd, rs|imm
	//	Load    rd, [rb+off]
	//	Store   rs, [rb+off]
	//	ALU     rd, rs, rt|imm
	//	GetPtr  rd, rb, ri|imm, imm
	//	Branch  (cond) rs, rt, target   |   target   |   reg
	//	Call    target | reg
	Ops []Operand
	// TargetSym is the symbolic name of a direct Call or Branch target as
	// written in assembly. It is not encoded in the instruction bytes;
	// the assembler lowers it to a relocation and the loader patches the
	// immediate operand. Disassembled instructions recover the name from
	// the symbol table when available.
	TargetSym string
}

// NumOps returns the number of operands.
func (i *Inst) NumOps() int { return len(i.Ops) }

// Operand returns operand n (0-based), or a zero Operand if out of range.
func (i *Inst) Operand(n int) Operand {
	if n < 0 || n >= len(i.Ops) {
		return Operand{}
	}
	return i.Ops[n]
}

// IsDirectTarget reports whether the instruction is a direct control
// transfer (Branch or Call with an immediate target) and returns the target
// address.
func (i *Inst) IsDirectTarget() (uint64, bool) {
	switch i.Op {
	case Branch:
		if n := len(i.Ops); n > 0 && i.Ops[n-1].Kind == KindImm {
			return uint64(i.Ops[n-1].Imm), true
		}
	case Call:
		if len(i.Ops) == 1 && i.Ops[0].Kind == KindImm {
			return uint64(i.Ops[0].Imm), true
		}
	}
	return 0, false
}

// IsIndirect reports whether the instruction is an indirect control
// transfer (register-target Branch or Call).
func (i *Inst) IsIndirect() bool {
	switch i.Op {
	case Branch:
		return len(i.Ops) == 1 && i.Ops[0].Kind == KindReg
	case Call:
		return len(i.Ops) == 1 && i.Ops[0].Kind == KindReg
	}
	return false
}

// IsConditional reports whether the instruction is a conditional branch.
func (i *Inst) IsConditional() bool { return i.Op == Branch && i.Cond != Always }

// EndsBlock reports whether the instruction terminates a basic block.
func (i *Inst) EndsBlock() bool {
	switch i.Op {
	case Branch, Return, Halt:
		return true
	}
	// Calls do not end basic blocks in this ISA's CFG model (as in most
	// binary-analysis frameworks, a call is treated as falling through).
	return false
}

// Next returns the address of the instruction that follows this one in the
// instruction stream.
func (i *Inst) Next() uint64 { return i.Addr + uint64(i.Size) }

// MemOperand returns the first memory operand and true, or a zero operand
// and false if the instruction has none.
func (i *Inst) MemOperand() (Operand, bool) {
	for _, op := range i.Ops {
		if op.Kind == KindMem {
			return op, true
		}
	}
	return Operand{}, false
}

// Validate checks that the operand shapes match the opcode. Instructions
// produced by the assembler always validate; the encoder rejects
// instructions that do not.
func (i *Inst) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("isa: invalid %s instruction: %s", i.Op, fmt.Sprintf(format, args...))
	}
	kinds := func(ks ...OperandKind) bool {
		if len(i.Ops) != len(ks) {
			return false
		}
		for n, k := range ks {
			if i.Ops[n].Kind != k {
				return false
			}
		}
		return true
	}
	if !i.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(i.Op))
	}
	if !i.Cond.Valid() {
		return fail("invalid condition %d", uint8(i.Cond))
	}
	if i.Cond != Always && i.Op != Branch {
		return fail("condition on non-branch")
	}
	for n, op := range i.Ops {
		switch op.Kind {
		case KindReg:
			if !op.Reg.Valid() {
				return fail("operand %d: bad register", n)
			}
		case KindMem:
			if !op.Base.Valid() {
				return fail("operand %d: bad base register", n)
			}
		case KindImm:
		default:
			return fail("operand %d: bad kind", n)
		}
	}
	switch i.Op {
	case Nop, Return, Halt:
		if len(i.Ops) != 0 {
			return fail("want no operands, have %d", len(i.Ops))
		}
	case Mov:
		if !kinds(KindReg, KindReg) && !kinds(KindReg, KindImm) {
			return fail("want rd, rs|imm")
		}
	case Load:
		if !kinds(KindReg, KindMem) {
			return fail("want rd, [rb+off]")
		}
	case Store:
		if !kinds(KindReg, KindMem) {
			return fail("want rs, [rb+off]")
		}
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr:
		if !kinds(KindReg, KindReg, KindReg) && !kinds(KindReg, KindReg, KindImm) {
			return fail("want rd, rs, rt|imm")
		}
	case GetPtr:
		if !kinds(KindReg, KindReg, KindReg, KindImm) && !kinds(KindReg, KindReg, KindImm, KindImm) {
			return fail("want rd, rb, ri|imm, imm")
		}
	case Branch:
		switch {
		case i.Cond == Always && kinds(KindImm): // direct unconditional
		case i.Cond == Always && kinds(KindReg): // indirect
		case i.Cond != Always && kinds(KindReg, KindReg, KindImm): // conditional direct
		default:
			return fail("want target | reg | rs, rt, target (conditional)")
		}
	case Call:
		if !kinds(KindImm) && !kinds(KindReg) {
			return fail("want target | reg")
		}
	default:
		return fail("unhandled opcode")
	}
	return nil
}

// String renders the instruction in assembler syntax, e.g.
// "blt r2, r3, 65632" or "call malloc".
func (i *Inst) String() string {
	var b strings.Builder
	switch {
	case i.Op == Branch && i.Cond != Always:
		fmt.Fprintf(&b, "b%s", i.Cond)
	case i.Op == Branch:
		b.WriteString("b")
	default:
		b.WriteString(i.Op.String())
	}
	for n, op := range i.Ops {
		if n == 0 {
			b.WriteString(" ")
		} else {
			b.WriteString(", ")
		}
		// Render symbolic targets when known.
		if op.Kind == KindImm && i.TargetSym != "" && n == len(i.Ops)-1 && (i.Op == Call || i.Op == Branch) {
			b.WriteString(i.TargetSym)
			continue
		}
		b.WriteString(op.String())
	}
	return b.String()
}
