package vm

import "repro/internal/isa"

// The cycle model. All costs are expressed in abstract "units"
// (UnitsPerCycle units = one nominal machine cycle) so that framework
// dispatch mechanisms can be priced at sub-cycle granularity relative to
// each other. Overhead percentages in the experiments are ratios of unit
// counts, so the absolute scale is immaterial; only the relative costs
// shape the results.
const (
	// UnitsPerCycle is the number of cost units in one nominal cycle.
	UnitsPerCycle = 10

	unitsBase   = 1 * UnitsPerCycle // simple ALU op, mov, nop, branch
	unitsMem    = 2 * UnitsPerCycle // load, store
	unitsMul    = 3 * UnitsPerCycle
	unitsDiv    = 8 * UnitsPerCycle
	unitsCall   = 2 * UnitsPerCycle // call, return (stack traffic)
	unitsGetPtr = 1 * UnitsPerCycle
)

// instCost returns the execution cost of an instruction in units.
func instCost(op isa.Op) uint64 {
	switch op {
	case isa.Load, isa.Store:
		return unitsMem
	case isa.Mul:
		return unitsMul
	case isa.Div, isa.Rem:
		return unitsDiv
	case isa.Call, isa.Return:
		return unitsCall
	case isa.GetPtr:
		return unitsGetPtr
	default:
		return unitsBase
	}
}

// IntrinsicCost is the cost charged for a runtime intrinsic call
// (malloc, free, print), standing in for the library work.
const IntrinsicCost = 20 * UnitsPerCycle
