package monitor

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpointsServeLiveState(t *testing.T) {
	col := obs.New(obs.Options{TraceCap: 8})
	id := col.RegisterProbe(obs.ProbeMeta{Label: "hot", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall})
	s := NewServer(Config{Collector: col, Backend: "vm", Interval: time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	col.Fire(id, 5, 0x40)
	code, body := get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	var stats obs.Stats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats.Backend != "vm" || stats.TotalFires != 1 || len(stats.Probes) != 1 {
		t.Fatalf("/stats = %+v", stats)
	}

	// The series endpoint reflects sampler points (driven manually here;
	// Start owns the ticker in live use).
	s.Series().Sample(time.Second)
	code, body = get(t, ts.URL+"/series")
	if code != 200 {
		t.Fatalf("/series = %d", code)
	}
	var dump obs.SeriesDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/series not JSON: %v", err)
	}
	if dump.Backend != "vm" || len(dump.Points) != 1 || dump.Points[0].Total.Fires != 1 {
		t.Fatalf("/series = %+v", dump)
	}

	// Two /metrics scrapes with activity in between: conformant and
	// monotone at the HTTP level.
	_, m1 := get(t, ts.URL+"/metrics")
	first := checkExposition(t, m1)
	for i := 0; i < 10; i++ {
		col.Fire(id, 5, 0x40)
	}
	_, m2 := get(t, ts.URL+"/metrics")
	second := checkExposition(t, m2)
	for key, v1 := range first {
		if strings.Contains(key, "_total") && second[key] < v1 {
			t.Errorf("counter %s decreased across scrapes: %v -> %v", key, v1, second[key])
		}
	}
	key := `cinnamon_probe_fires_total{backend="vm",probe="hot",trigger="before",mechanism="clean-call"}`
	if second[key] != first[key]+10 {
		t.Fatalf("scrape delta = %v -> %v, want +10", first[key], second[key])
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name, data string
}

func readSSE(t *testing.T, r *bufio.Reader) sseEvent {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[len("data: "):]
		case line == "":
			if ev.name != "" || ev.data != "" {
				return ev
			}
		}
	}
}

func TestTraceSSEStreamsEventsAndAccountsDrops(t *testing.T) {
	col := obs.New(obs.Options{TraceCap: 8})
	id := col.RegisterProbe(obs.ProbeMeta{Label: "hot", Trigger: obs.TriggerBefore, Mechanism: obs.MechInlinedCall})
	// A one-event client buffer plus a fast heartbeat makes slow-client
	// drops both quick to provoke and quick to observe.
	s := NewServer(Config{Collector: col, Backend: "vm", TraceBuf: 1, Heartbeat: 10 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// Wait for the handler's subscription to attach.
	deadline := time.Now().Add(5 * time.Second)
	for col.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// Fire until the one-slot client buffer demonstrably overflowed. The
	// run side never blocks: this loop is the VM's hot path standing in.
	fired := 0
	for col.SubscriberDrops() == 0 {
		col.Fire(id, 2, uint64(fired))
		fired++
		if fired > 1_000_000 {
			t.Fatal("no drops after 1M fires with a 1-buffer subscriber")
		}
	}

	// The stream must deliver real fire events and a heartbeat whose
	// drop count surfaces the overflow.
	sawFire := false
	var hb heartbeat
	for i := 0; i < 1000; i++ {
		ev := readSSE(t, br)
		switch ev.name {
		case "fire":
			var te obs.TraceEvent
			if err := json.Unmarshal([]byte(ev.data), &te); err != nil {
				t.Fatalf("fire event not JSON: %q", ev.data)
			}
			if te.Probe != 1 || te.Cost != 2 {
				t.Fatalf("fire event = %+v", te)
			}
			sawFire = true
		case "heartbeat":
			if err := json.Unmarshal([]byte(ev.data), &hb); err != nil {
				t.Fatalf("heartbeat not JSON: %q", ev.data)
			}
			if sawFire && hb.Dropped >= 1 {
				if hb.Subscribers != 1 {
					t.Fatalf("heartbeat subscribers = %d, want 1", hb.Subscribers)
				}
				// Disconnect; the handler must unsubscribe and fold its
				// drops into the collector's monotone total.
				resp.Body.Close()
				deadline := time.Now().Add(5 * time.Second)
				for col.Subscribers() != 0 {
					if time.Now().After(deadline) {
						t.Fatal("handler never unsubscribed after disconnect")
					}
					time.Sleep(time.Millisecond)
				}
				if col.SubscriberDrops() < hb.Dropped {
					t.Fatalf("retired drops %d < last heartbeat %d", col.SubscriberDrops(), hb.Dropped)
				}
				return
			}
		}
	}
	t.Fatalf("never observed fire + heartbeat-with-drops (sawFire=%v, last hb=%+v)", sawFire, hb)
}

func TestStartServesAndShutdownReleasesStreams(t *testing.T) {
	col := obs.New(obs.Options{TraceCap: 8})
	col.RegisterProbe(obs.ProbeMeta{Label: "p", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall})
	s := NewServer(Config{Collector: col, Backend: "vm", Interval: 10 * time.Millisecond, Heartbeat: 10 * time.Millisecond})

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Hold an SSE stream open across shutdown: Shutdown must release the
	// handler (via the quit channel) rather than hanging on the drain.
	resp, err := http.Get(base + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	readSSE(t, bufio.NewReader(resp.Body)) // at least one heartbeat flows

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("Shutdown hung on the open SSE stream")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
	// The sampler took its final point and stopped.
	if len(s.Series().Points()) == 0 {
		t.Fatal("series has no points after a 10ms-interval run")
	}
}
