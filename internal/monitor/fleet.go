package monitor

import (
	"fmt"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/governor"
	"repro/internal/obs"
)

// The fleet registry: the aggregation layer a long-lived daemon
// (cmd/cinnamond) serves many concurrent victim×tool sessions through.
// Every session owns its own sharded obs.Collector — generation-tagged
// ProbeIDs make cross-collector firings land in the untracked bucket,
// never in another session's slots — plus its own interval Series and,
// optionally, an overhead governor. The Fleet is the read path the
// aggregated endpoints (fleet /metrics, /series, /sessions, /trace)
// snapshot; the scheduler (internal/fleet) is its write path, advancing
// each session through the queued → running → done/failed/canceled
// lifecycle.

// SessionLabels identify one session in fleet exposition: every metric
// of the session carries all four as Prometheus labels.
type SessionLabels struct {
	// Session is the fleet-unique session ID (the scheduler assigns
	// "s1", "s2", ...).
	Session string `json:"session"`
	// Tool and Victim name what the session runs.
	Tool   string `json:"tool"`
	Victim string `json:"victim"`
	// Backend names the instrumentation framework.
	Backend string `json:"backend"`
}

// maxLabelLen bounds a label value; longer values would bloat every
// exposed series of the session.
const maxLabelLen = 128

// ValidateLabelValue checks a session label value at admission time:
// non-empty, bounded, valid UTF-8, no control characters. Escaping
// (escapeLabel) makes any accepted value safe in the exposition format;
// validation keeps junk out of the label space in the first place.
func ValidateLabelValue(name, v string) error {
	if v == "" {
		return fmt.Errorf("monitor: empty %s label", name)
	}
	if len(v) > maxLabelLen {
		return fmt.Errorf("monitor: %s label exceeds %d bytes", name, maxLabelLen)
	}
	if !utf8.ValidString(v) {
		return fmt.Errorf("monitor: %s label is not valid UTF-8", name)
	}
	for _, r := range v {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("monitor: %s label contains control character %q", name, r)
		}
	}
	return nil
}

// Validate checks every label of the set.
func (l SessionLabels) Validate() error {
	for _, f := range []struct{ name, v string }{
		{"session", l.Session}, {"tool", l.Tool}, {"victim", l.Victim}, {"backend", l.Backend},
	} {
		if err := ValidateLabelValue(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// SessionState is a session's lifecycle state.
type SessionState string

// The lifecycle: sessions are admitted queued, claimed running by a
// worker, and finish done, failed (attempts exhausted) or canceled
// (drain deadline).
const (
	SessionQueued   SessionState = "queued"
	SessionRunning  SessionState = "running"
	SessionDone     SessionState = "done"
	SessionFailed   SessionState = "failed"
	SessionCanceled SessionState = "canceled"
)

// SessionStates lists the lifecycle states in order (fleet exposition
// emits one gauge per state, activity or not, so dashboards see zeros).
func SessionStates() []SessionState {
	return []SessionState{SessionQueued, SessionRunning, SessionDone, SessionFailed, SessionCanceled}
}

// FleetSession is one registered session: labels, its sharded collector
// and series, and mutable lifecycle state. Collector and Series are
// fixed at registration; lifecycle fields are guarded by mu so the
// exposition path never reads a torn state.
type FleetSession struct {
	labels SessionLabels
	// base is the session's rendered exposition label set, fixed at
	// registration (labels are immutable) so the scrape hot path never
	// re-escapes or re-formats it.
	base   string
	col    *obs.Collector
	series *obs.Series

	mu       sync.Mutex
	state    SessionState
	attempts int
	errMsg   string
	cycles   uint64
	insts    uint64
	gov      *governor.Governor
	enqueued time.Time
	started  time.Time
	finished time.Time
}

// Labels returns the session's identifying labels.
func (s *FleetSession) Labels() SessionLabels { return s.labels }

// Collector returns the session's sharded collector.
func (s *FleetSession) Collector() *obs.Collector { return s.col }

// Series returns the session's interval aggregator.
func (s *FleetSession) Series() *obs.Series { return s.series }

// State returns the current lifecycle state.
func (s *FleetSession) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Attempts returns how many scheduler attempts the session has made.
// Unlike Info it takes no collector snapshot, so the scrape hot path
// can read it per scrape without doubling snapshot work.
func (s *FleetSession) Attempts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts
}

// SetGovernor attaches the session's current overhead governor (a
// restarted attempt gets a fresh one; the latest is exposed).
func (s *FleetSession) SetGovernor(g *governor.Governor) {
	s.mu.Lock()
	s.gov = g
	s.mu.Unlock()
}

// Governor returns the session's current governor (nil when ungoverned).
func (s *FleetSession) Governor() *governor.Governor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov
}

// Start marks the session running and counts the attempt.
func (s *FleetSession) Start() {
	s.mu.Lock()
	s.state = SessionRunning
	s.attempts++
	if s.started.IsZero() {
		s.started = time.Now()
	}
	s.mu.Unlock()
}

// Requeue returns a failed attempt to the queue (restart-on-failure):
// the state goes back to queued and the error is retained until a later
// attempt settles it.
func (s *FleetSession) Requeue(errMsg string) {
	s.mu.Lock()
	s.state = SessionQueued
	s.errMsg = errMsg
	s.mu.Unlock()
}

// Finish settles the session in a terminal state with the machine
// result of its last attempt.
func (s *FleetSession) Finish(state SessionState, cycles, insts uint64, errMsg string) {
	s.mu.Lock()
	s.state = state
	s.cycles = cycles
	s.insts = insts
	s.errMsg = errMsg
	s.finished = time.Now()
	s.mu.Unlock()
}

// SessionInfo is the exported lifecycle view of one session, served by
// the fleet /sessions endpoint.
type SessionInfo struct {
	SessionLabels
	State    SessionState `json:"state"`
	Attempts int          `json:"attempts"`
	Error    string       `json:"error,omitempty"`
	// BuildSource reports where the session's instrumentation build came
	// from when the scheduler ran it through an artifact cache: "cold"
	// (at least one cache miss — the session built and published
	// artifacts) or "warm" (every consulted artifact was served from the
	// cache). Empty when the session never consulted a cache.
	BuildSource string `json:"build_source,omitempty"`
	// Probes, Fires, Skips and ProbeCycles are a live snapshot of the
	// session's collector.
	Probes      int    `json:"probes"`
	Fires       uint64 `json:"fires"`
	Skips       uint64 `json:"skips,omitempty"`
	ProbeCycles uint64 `json:"probe_cycles"`
	// Cycles and Insts are the machine result of the last finished
	// attempt (0 while the session runs).
	Cycles uint64 `json:"cycles,omitempty"`
	Insts  uint64 `json:"insts,omitempty"`
	// Lifecycle timestamps (RFC 3339; the zero time until the session
	// reaches that point of its life).
	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
}

// Info exports the session's lifecycle state plus a live counter
// snapshot.
func (s *FleetSession) Info() SessionInfo {
	snap := s.col.Snapshot(s.labels.Backend)
	src := ""
	switch {
	case snap.Build.ArtifactMisses > 0:
		src = "cold"
	case snap.Build.ArtifactHits > 0:
		src = "warm"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		SessionLabels: s.labels,
		State:         s.state,
		Attempts:      s.attempts,
		Error:         s.errMsg,
		BuildSource:   src,
		Probes:        len(snap.Probes),
		Fires:         snap.TotalFires,
		Skips:         snap.TotalSkips,
		ProbeCycles:   snap.ProbeCycles,
		Cycles:        s.cycles,
		Insts:         s.insts,
		EnqueuedAt:    s.enqueued,
		StartedAt:     s.started,
		FinishedAt:    s.finished,
	}
}

// Fleet is the session registry the aggregated endpoints serve.
// Sessions are append-only: finished sessions stay registered so their
// counters remain visible (and fleet rollups stay monotone) until the
// daemon exits.
type Fleet struct {
	mu       sync.Mutex
	sessions []*FleetSession
	byID     map[string]*FleetSession
}

// NewFleet creates an empty registry.
func NewFleet() *Fleet {
	return &Fleet{byID: make(map[string]*FleetSession)}
}

// Add registers a session. Labels are validated and the session ID must
// be fleet-unique. The collector is required; series may be nil (the
// session then contributes nothing to /series).
func (f *Fleet) Add(labels SessionLabels, col *obs.Collector, series *obs.Series) (*FleetSession, error) {
	if err := labels.Validate(); err != nil {
		return nil, err
	}
	if col == nil {
		return nil, fmt.Errorf("monitor: session %s registered without a collector", labels.Session)
	}
	s := &FleetSession{
		labels:   labels,
		base:     sessionBase(labels),
		col:      col,
		series:   series,
		state:    SessionQueued,
		enqueued: time.Now(),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byID[labels.Session]; dup {
		return nil, fmt.Errorf("monitor: duplicate session ID %q", labels.Session)
	}
	f.sessions = append(f.sessions, s)
	f.byID[labels.Session] = s
	return s, nil
}

// Sessions returns the registered sessions in registration order.
func (f *Fleet) Sessions() []*FleetSession {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FleetSession, len(f.sessions))
	copy(out, f.sessions)
	return out
}

// Get returns the session with the given ID.
func (f *Fleet) Get(id string) (*FleetSession, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.byID[id]
	return s, ok
}

// StateCounts tallies sessions by lifecycle state.
func (f *Fleet) StateCounts() map[SessionState]int {
	counts := make(map[SessionState]int, 5)
	for _, s := range f.Sessions() {
		counts[s.State()]++
	}
	return counts
}
