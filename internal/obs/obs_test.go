package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegisterAndFire(t *testing.T) {
	c := New(Options{})
	a := c.RegisterProbe(ProbeMeta{Label: "before inst @1:1", Trigger: TriggerBefore, Mechanism: MechCleanCall, Addr: 0x1000, DispatchCost: 30})
	b := c.RegisterProbe(ProbeMeta{Label: "entry basicblock @2:3", Trigger: TriggerBlockEntry, Mechanism: MechSnippet, Addr: 0x2000, DispatchCost: 14})
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d, want 1, 2", a, b)
	}
	for i := 0; i < 3; i++ {
		c.Fire(a, 30, 0x1000)
	}
	c.Fire(b, 14, 0x2000)
	c.Fire(NoProbe, 7, 0x3000)  // untagged
	c.Fire(ProbeID(99), 5, 0x4) // foreign id: must not panic, lands untracked

	s := c.Snapshot("pin")
	if s.Backend != "pin" {
		t.Errorf("backend = %q", s.Backend)
	}
	if got := s.Probes[0].Fires; got != 3 {
		t.Errorf("probe a fires = %d, want 3", got)
	}
	if got := s.Probes[0].Cycles; got != 90 {
		t.Errorf("probe a cycles = %d, want 90", got)
	}
	if got := s.Probes[1].Fires; got != 1 {
		t.Errorf("probe b fires = %d, want 1", got)
	}
	if s.UntrackedFires != 2 || s.UntrackedCycles != 12 {
		t.Errorf("untracked = %d fires / %d cycles, want 2 / 12", s.UntrackedFires, s.UntrackedCycles)
	}
	if s.TotalFires != 6 {
		t.Errorf("total fires = %d, want 6", s.TotalFires)
	}
	if s.ProbeCycles != 90+14+12 {
		t.Errorf("probe cycles = %d, want %d", s.ProbeCycles, 90+14+12)
	}
	if got := s.FiresWhere(func(p ProbeStats) bool { return p.Trigger == TriggerBefore }); got != 3 {
		t.Errorf("FiresWhere(before) = %d, want 3", got)
	}
	if got := s.CyclesWhere(func(p ProbeStats) bool { return p.Mechanism == MechSnippet }); got != 14 {
		t.Errorf("CyclesWhere(snippet) = %d, want 14", got)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	const cap = 4
	c := New(Options{TraceCap: cap})
	id := c.RegisterProbe(ProbeMeta{Label: "p", Trigger: TriggerBefore, Mechanism: MechCleanCall})
	const total = 11
	for i := 0; i < total; i++ {
		c.Fire(id, uint64(i), uint64(0x100+i))
	}
	s := c.Snapshot("janus")
	tr := s.Trace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.Cap != cap {
		t.Errorf("cap = %d, want %d", tr.Cap, cap)
	}
	if tr.Dropped != total-cap {
		t.Errorf("dropped = %d, want %d", tr.Dropped, total-cap)
	}
	if len(tr.Events) != cap {
		t.Fatalf("len(events) = %d, want %d", len(tr.Events), cap)
	}
	// The window must be the LAST cap firings with contiguous sequence
	// numbers, oldest first.
	for i, e := range tr.Events {
		wantSeq := uint64(total - cap + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.PC != 0x100+wantSeq {
			t.Errorf("event %d pc = %#x, want %#x", i, e.PC, 0x100+wantSeq)
		}
	}
}

func TestTraceUnderfill(t *testing.T) {
	c := New(Options{TraceCap: 8})
	id := c.RegisterProbe(ProbeMeta{Label: "p"})
	c.Fire(id, 1, 0x10)
	c.Fire(id, 2, 0x20)
	tr := c.Snapshot("dyninst").Trace
	if tr.Dropped != 0 || len(tr.Events) != 2 {
		t.Fatalf("dropped=%d events=%d, want 0/2", tr.Dropped, len(tr.Events))
	}
	if tr.Events[0].Seq != 0 || tr.Events[1].Seq != 1 {
		t.Errorf("seqs = %d,%d, want 0,1", tr.Events[0].Seq, tr.Events[1].Seq)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := New(Options{TraceCap: 2})
	id := c.RegisterProbe(ProbeMeta{Label: "before inst @3:3", Trigger: TriggerBefore, Mechanism: MechInlinedCall, Addr: 0x40, DispatchCost: 12})
	c.Fire(id, 12, 0x40)
	c.Build().ActionsPlaced = 1
	c.NoteTranslation(300)

	var buf bytes.Buffer
	if err := c.Snapshot("janus").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Backend != "janus" || back.TotalFires != 1 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	if back.Build.BlocksTranslated != 1 || back.Build.TranslationCycles != 300 {
		t.Errorf("build stats lost: %+v", back.Build)
	}
	if len(back.Probes) != 1 || back.Probes[0].Label != "before inst @3:3" {
		t.Errorf("probe meta lost: %+v", back.Probes)
	}
}

func TestWriteTableGroupsPlacements(t *testing.T) {
	c := New(Options{})
	// Two placements (sites) of the same action must fold into one row.
	for i := 0; i < 2; i++ {
		id := c.RegisterProbe(ProbeMeta{Label: "entry basicblock @5:3", Trigger: TriggerBlockEntry, Mechanism: MechSnippet, Addr: uint64(0x100 * (i + 1)), DispatchCost: 14})
		c.Fire(id, 14, uint64(0x100*(i+1)))
	}
	var buf bytes.Buffer
	c.Snapshot("dyninst").WriteTable(&buf)
	out := buf.String()
	if n := strings.Count(out, "entry basicblock @5:3"); n != 1 {
		t.Errorf("want 1 grouped row, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "total: 2 fires") {
		t.Errorf("missing total line:\n%s", out)
	}
}
