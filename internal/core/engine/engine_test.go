package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core/placement"
	"repro/internal/core/value"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vm"
)

// recordingPlacer captures placements instead of instrumenting anything,
// so tests can inspect exactly what the engine decided.
type recordingPlacer struct {
	prog    *cfg.Program
	modules []*cfg.Module
	loops   bool

	instBefore []placed
	instAfter  []placed
	blockEntry []placed
	edges      []placedEdge
	inits      []func()
	finis      []func()
}

type placed struct {
	addr   uint64
	action *placement.Action
}

type placedEdge struct {
	from, to uint64
	action   *placement.Action
}

func (p *recordingPlacer) Name() string           { return "recording" }
func (p *recordingPlacer) Modules() []*cfg.Module { return p.modules }
func (p *recordingPlacer) SupportsLoops() bool    { return p.loops }

// Lower records the finished rule table instead of instrumenting
// anything. Merged rules are flattened back to their constituents so
// assertions see one entry per concrete placement.
func (p *recordingPlacer) Lower(rs *placement.RuleSet) error {
	var lower func(r *placement.Rule)
	lower = func(r *placement.Rule) {
		if len(r.Merged) > 0 {
			for _, c := range r.Merged {
				lower(c)
			}
			return
		}
		switch r.Trigger {
		case placement.Before:
			p.instBefore = append(p.instBefore, placed{r.Inst.Addr, r.Action})
		case placement.After:
			p.instAfter = append(p.instAfter, placed{r.Inst.Addr, r.Action})
		case placement.BlockEntry:
			p.blockEntry = append(p.blockEntry, placed{r.Block.Start, r.Action})
		case placement.Edge:
			p.edges = append(p.edges, placedEdge{r.From.Start, r.Block.Start, r.Action})
		}
	}
	for _, r := range rs.Rules() {
		lower(r)
	}
	p.inits = rs.Inits
	p.finis = rs.Finis
	return nil
}

const appSrc = `
.module app
.executable
.entry main
.extern print
.func main
  mov  r5, @buf
  mov  r2, 0
  mov  r3, 3
head:
  load r4, [r5]
  store r4, [r5+8]
  add  r2, r2, 1
  blt  r2, r3, head
  call helper
  halt
.func helper
  load r4, [r5]
  ret
.data
buf: .quad 5, 0
`

func loadApp(t *testing.T, srcs ...string) *cfg.Program {
	t.Helper()
	if len(srcs) == 0 {
		srcs = []string{appSrc}
	}
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func instrument(t *testing.T, src string, prog *cfg.Program, loops bool) (*recordingPlacer, *Instance, *bytes.Buffer) {
	t.Helper()
	tool, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pl := &recordingPlacer{prog: prog, modules: prog.Modules, loops: loops}
	var out bytes.Buffer
	inst, err := Instrument(tool, prog, pl, Options{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	return pl, inst, &out
}

func TestPlacementSelection(t *testing.T) {
	prog := loadApp(t)
	pl, _, _ := instrument(t, `
inst I where (I.opcode == Load) {
  before I { print(1); }
  after I { print(2); }
}
`, prog, true)
	// Two loads in the program (head block + helper).
	if len(pl.instBefore) != 2 || len(pl.instAfter) != 2 {
		t.Fatalf("before=%d after=%d, want 2 each", len(pl.instBefore), len(pl.instAfter))
	}
	for _, p := range pl.instBefore {
		if prog.InstAt(p.addr).Op != isa.Load {
			t.Errorf("placed on non-load at %#x", p.addr)
		}
	}
}

func TestAnalysisCodeRunsPerInstance(t *testing.T) {
	prog := loadApp(t)
	_, _, out := instrument(t, `
basicblock B {
  print("block", B.id);
}
`, prog, true)
	// Analysis code runs at instrumentation time, once per block, in
	// address order.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	total := 0
	for _, m := range prog.Modules {
		for _, f := range m.Funcs {
			total += len(f.Blocks)
		}
	}
	if len(lines) != total {
		t.Fatalf("analysis ran %d times, want %d", len(lines), total)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] <= lines[i-1] && len(lines[i]) == len(lines[i-1]) {
			t.Errorf("analysis order not ascending: %q after %q", lines[i], lines[i-1])
		}
	}
}

func TestNestedCommandScopesToParent(t *testing.T) {
	prog := loadApp(t)
	_, _, out := instrument(t, `
func F where (F.name == "helper") {
  inst I where (I.opcode == Load) {
    print(I.addr);
  }
}
`, prog, true)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("nested command matched %d loads, want 1 (helper only)", len(lines))
	}
	helper := prog.FuncByName("helper")
	var loadAddr uint64
	for _, b := range helper.Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Load {
				loadAddr = in.Addr
			}
		}
	}
	if lines[0] != fmt.Sprintf("%d", loadAddr) {
		t.Errorf("printed %s, want %d", lines[0], loadAddr)
	}
}

func TestDeepNesting(t *testing.T) {
	prog := loadApp(t)
	_, _, out := instrument(t, `
module M {
  func F where (F.name == "main") {
    loop L {
      basicblock B {
        inst I where (I.opcode == Store) {
          print("store-in-loop");
        }
      }
    }
  }
}
`, prog, true)
	if got := strings.Count(out.String(), "store-in-loop"); got != 1 {
		t.Errorf("deep nesting matched %d stores, want 1", got)
	}
}

func TestTriggerMapping(t *testing.T) {
	prog := loadApp(t)
	pl, _, _ := instrument(t, `
func F where (F.name == "main") {
  entry F { print(1); }
  exit F { print(2); }
}
loop L {
  entry L { print(3); }
  exit L { print(4); }
  iter L { print(5); }
}
basicblock B where (B.ninsts > 3) {
  exit B { print(6); }
}
`, prog, true)
	main := prog.FuncByName("main")
	// Function entry -> block entry of the entry block.
	foundEntry := false
	for _, p := range pl.blockEntry {
		if p.addr == main.Blocks[0].Start {
			foundEntry = true
		}
	}
	if !foundEntry {
		t.Error("function entry not placed at entry block")
	}
	// Function exit -> before the halt.
	foundHalt := false
	for _, p := range pl.instBefore {
		if prog.InstAt(p.addr).Op == isa.Halt {
			foundHalt = true
		}
	}
	if !foundHalt {
		t.Error("function exit not placed before halt")
	}
	// Loop triggers -> edges (entry + exit + iter of main's loop).
	loop := main.Loops[0]
	wantEdges := len(loop.Entries) + len(loop.Exits) + len(loop.Backs)
	if len(pl.edges) != wantEdges {
		t.Errorf("edges placed = %d, want %d", len(pl.edges), wantEdges)
	}
	// Block exit -> before the block's last instruction.
	foundBlockExit := false
	for _, p := range pl.instBefore {
		if b := prog.BlockContaining(p.addr); b != nil && b.Last().Addr == p.addr && len(b.Insts) > 3 {
			foundBlockExit = true
		}
	}
	if !foundBlockExit {
		t.Error("block exit not placed before terminator")
	}
}

func TestStaticActionConstraintFilters(t *testing.T) {
	prog := loadApp(t)
	pl, _, _ := instrument(t, `
basicblock B {
  uint64 loads = 0;
  inst I where (I.opcode == Load) {
    loads = loads + 1;
  }
  before B where (loads > 0) {
    print(loads);
  }
}
`, prog, true)
	// Only blocks containing loads get instrumented: head block and
	// helper's block.
	if len(pl.blockEntry) != 2 {
		t.Errorf("instrumented %d blocks, want 2", len(pl.blockEntry))
	}
}

func TestCaptureByValueAndGlobalSharing(t *testing.T) {
	prog := loadApp(t)
	pl, inst, out := instrument(t, `
uint64 total = 0;
basicblock B {
  uint64 local = B.ninsts;
  entry B {
    total = total + local;
  }
}
exit { print(total); }
`, prog, true)
	// Execute the placed actions by hand: each should add its block's
	// captured ninsts to the shared global.
	want := 0
	for _, p := range pl.blockEntry {
		p.action.Exec(nil)
		want += len(prog.BlockStarting(p.addr).Insts)
	}
	for _, fn := range pl.finis {
		fn()
	}
	if err := inst.Err(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != fmt.Sprintf("%d", want) {
		t.Errorf("total = %s, want %d", got, want)
	}
}

func TestCommandsMapInProgramOrder(t *testing.T) {
	prog := loadApp(t)
	pl, _, _ := instrument(t, `
inst I where (I.opcode == Load) {
  before I { print(1); }
}
inst J where (J.opcode == Load) {
  before J { print(2); }
}
`, prog, true)
	// Both commands target the same loads; placements must interleave
	// with the first command's action placed first at each address.
	byAddr := map[uint64][]*placement.Action{}
	var order []uint64
	for _, p := range pl.instBefore {
		if len(byAddr[p.addr]) == 0 {
			order = append(order, p.addr)
		}
		byAddr[p.addr] = append(byAddr[p.addr], p.action)
	}
	for _, addr := range order {
		if len(byAddr[addr]) != 2 {
			t.Errorf("%#x: %d actions, want 2", addr, len(byAddr[addr]))
		}
	}
}

func TestLoopCommandRejectedWithoutLoopSupport(t *testing.T) {
	prog := loadApp(t)
	tool, err := Compile(`loop L { entry L { print(1); } }`)
	if err != nil {
		t.Fatal(err)
	}
	pl := &recordingPlacer{prog: prog, modules: prog.Modules, loops: false}
	_, err = Instrument(tool, prog, pl, Options{})
	if err == nil || !strings.Contains(err.Error(), "no notion of loops") {
		t.Fatalf("err = %v", err)
	}
	// Nested loop commands are rejected too.
	tool, err = Compile(`func F { loop L { entry L { print(1); } } }`)
	if err != nil {
		t.Fatal(err)
	}
	pl = &recordingPlacer{prog: prog, modules: prog.Modules, loops: false}
	_, err = Instrument(tool, prog, pl, Options{})
	if err == nil {
		t.Fatal("nested loop command accepted")
	}
}

func TestModuleScoping(t *testing.T) {
	lib := `
.module libx
.global libfn
.func libfn
  load r4, [r5]
  ret
`
	mainSrc := `
.module app
.executable
.entry main
.extern libfn
.func main
  load r4, [r5]
  call libfn
  halt
`
	prog := loadApp(t, mainSrc, lib)
	// A placer restricted to the executable module must only see its
	// loads.
	tool, err := Compile(`inst I where (I.opcode == Load) { before I { print(1); } }`)
	if err != nil {
		t.Fatal(err)
	}
	pl := &recordingPlacer{prog: prog, modules: prog.Modules[:1], loops: true}
	if _, err := Instrument(tool, prog, pl, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(pl.instBefore) != 1 {
		t.Errorf("placed %d, want 1 (executable only)", len(pl.instBefore))
	}
	// Module commands bind module attributes.
	pl2 := &recordingPlacer{prog: prog, modules: prog.Modules, loops: true}
	tool2, err := Compile(`module M { print(M.name, M.nfuncs, M.isexecutable); }`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := Instrument(tool2, prog, pl2, Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	want := "app 1 true\nlibx 1 false\n"
	if out.String() != want {
		t.Errorf("module analysis = %q, want %q", out.String(), want)
	}
}

func TestDynamicWhereCompilesToGuard(t *testing.T) {
	prog := loadApp(t)
	pl, inst, out := instrument(t, `
inst I where (I.opcode == Load) {
  before I where (I.memaddr > 100) {
    print("hit");
  }
}
`, prog, true)
	if len(pl.instBefore) != 2 {
		t.Fatalf("placements = %d", len(pl.instBefore))
	}
	a := pl.instBefore[0].action
	if len(a.DynAttrs) != 1 {
		t.Fatalf("dyn attrs = %v", a.DynAttrs)
	}
	// Guard false: no output. Guard true: output.
	a.Exec([]value.Value{value.UintVal(50)})
	if out.String() != "" {
		t.Error("guard did not suppress the body")
	}
	a.Exec([]value.Value{value.UintVal(500)})
	if strings.TrimSpace(out.String()) != "hit" {
		t.Errorf("guard true output = %q", out.String())
	}
	if inst.Err() != nil {
		t.Fatal(inst.Err())
	}
}

func TestActionRuntimeErrorsAreRecorded(t *testing.T) {
	prog := loadApp(t)
	pl, inst, _ := instrument(t, `
int zero = 0;
inst I where (I.opcode == Load) {
  before I {
    print(1 / zero);
  }
}
`, prog, true)
	pl.instBefore[0].action.Exec(nil)
	if err := inst.Err(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("inst I {"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := Compile("inst I { before J { } }"); err == nil {
		t.Error("semantic error not surfaced")
	}
}
