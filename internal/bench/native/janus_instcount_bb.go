package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/janus"
	"repro/internal/vm"
)

// Low-overhead instruction counting written directly against the Janus
// API (the Figure 13 baseline): the static pass counts the loads per
// basic block and records the count in the rule payload; the dynamic
// handler adds the payload word to the global counter — one inlined
// clean call per block execution.
func init() { register("janus", "instcount_bb", janusInstCountBB) }

func janusInstCountBB(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	const (
		hAdd janus.HandlerID = iota + 1
		hFini
	)
	var instCount uint64
	tool := &janus.Tool{
		Name: "instcount_bb",
		StaticPass: func(sa *janus.StaticAnalyzer) {
			for _, f := range sa.Executable().Funcs {
				for _, b := range f.Blocks {
					local := uint64(0)
					for _, in := range b.Insts {
						if in.Op == isa.Load {
							local++
						}
					}
					if local > 0 {
						sa.EmitRule(janus.Rule{
							BlockAddr: b.Start,
							Trigger:   janus.TriggerBlockEntry,
							Handler:   hAdd,
							Data:      []uint64{local},
						})
					}
				}
			}
			sa.EmitRule(janus.Rule{Trigger: janus.TriggerFini, Handler: hFini})
		},
		Handlers: map[janus.HandlerID]janus.Handler{
			hAdd: {
				Fn:        func(_ *vm.Ctx, data []uint64) { instCount += data[0] },
				Cost:      1 * stmtCost,
				Inlinable: true,
			},
			hFini: {
				Fn: func(*vm.Ctx, []uint64) { fmt.Fprintf(out, "%d\n", instCount) },
			},
		},
	}
	return janus.Run(prog, tool, janus.Config{Fuel: fuel})
}
