package vm

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
)

func build(t *testing.T, srcs ...string) *cfg.Program {
	t.Helper()
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func run(t *testing.T, prog *cfg.Program) (*VM, *Result, string) {
	t.Helper()
	var out bytes.Buffer
	v := New(prog, Config{AppOut: &out})
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return v, res, out.String()
}

const sumSrc = `
.module a.out
.executable
.entry main
.extern print
.func main
  mov r1, 0
  mov r2, 0
  mov r3, 10
head:
  add r1, r1, r2
  add r2, r2, 1
  blt r2, r3, head
  call print
  halt
`

func TestSumLoop(t *testing.T) {
	prog := build(t, sumSrc)
	_, res, out := run(t, prog)
	if out != "45\n" {
		t.Errorf("output = %q, want 45", out)
	}
	// 3 movs + 10*(add,add,blt) + call + halt = 35 instructions.
	if res.Insts != 35 {
		t.Errorf("insts = %d, want 35", res.Insts)
	}
	if res.Cycles == 0 || res.ExitCode != 0 {
		t.Errorf("cycles=%d exit=%d", res.Cycles, res.ExitCode)
	}
}

func TestArithmeticOps(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern print
.func main
  mov r2, 100
  mov r3, 7
  div r1, r2, r3      ; 14
  call print
  rem r1, r2, r3      ; 2
  call print
  mul r1, r2, r3      ; 700
  call print
  sub r1, r2, r3      ; 93
  call print
  and r1, r2, 12      ; 4
  call print
  or  r1, r2, 3       ; 103
  call print
  xor r1, r2, 5       ; 97
  call print
  shl r1, r2, 2       ; 400
  call print
  shr r1, r2, 2       ; 25
  call print
  getptr r1, r2, r3, 9 ; 116
  call print
  mov r5, -4
  mov r6, 2
  div r1, r5, r6      ; -2 signed
  call print
  halt
`
	prog := build(t, src)
	_, _, out := run(t, prog)
	want := "14\n2\n700\n93\n4\n103\n97\n400\n25\n116\n-2\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestMallocStoreLoad(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern malloc
.extern free
.extern print
.func main
  mov   r1, 64
  call  malloc
  mov   r5, r0
  mov   r2, 1234
  store r2, [r5+16]
  load  r1, [r5+16]
  call  print
  mov   r1, r5
  call  free
  halt
`
	prog := build(t, src)
	_, res, out := run(t, prog)
	if out != "1234\n" {
		t.Errorf("output = %q", out)
	}
	if res.Allocs != 1 || res.Frees != 1 {
		t.Errorf("allocs=%d frees=%d", res.Allocs, res.Frees)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	// fib(10) = 55 via naive recursion.
	src := `
.module a.out
.executable
.entry main
.extern print
.func main
  mov  r1, 10
  call fib
  mov  r1, r0
  call print
  halt
.func fib
  mov  r7, 2
  blt  r1, r7, base
  sub  sp, sp, 16
  store r1, [sp]
  sub  r1, r1, 1
  call fib
  store r0, [sp+8]
  load r1, [sp]
  sub  r1, r1, 2
  call fib
  load r7, [sp+8]
  add  r0, r0, r7
  add  sp, sp, 16
  ret
base:
  mov  r0, r1
  ret
`
	prog := build(t, src)
	_, _, out := run(t, prog)
	if out != "55\n" {
		t.Errorf("fib out = %q, want 55", out)
	}
}

func TestExitCode(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern exit
.func main
  mov r1, 42
  call exit
  halt
`
	prog := build(t, src)
	_, res, _ := run(t, prog)
	if res.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", res.ExitCode)
	}
}

func TestCrossModuleCall(t *testing.T) {
	lib := `
.module libshared
.global double
.func double
  add r0, r1, r1
  ret
`
	main := `
.module a.out
.executable
.entry main
.extern double
.extern print
.func main
  mov r1, 21
  call double
  mov r1, r0
  call print
  halt
`
	prog := build(t, main, lib)
	_, _, out := run(t, prog)
	if out != "42\n" {
		t.Errorf("out = %q, want 42", out)
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"div by zero", ".module a.out\n.executable\n.entry main\n.func main\n mov r2, 0\n div r1, r1, r2\n halt\n", "division by zero"},
		{"rem by zero", ".module a.out\n.executable\n.entry main\n.func main\n mov r2, 0\n rem r1, r1, r2\n halt\n", "division by zero"},
		{"bad jump", ".module a.out\n.executable\n.entry main\n.func main\n mov r2, 5\n b r2\n halt\n", "outside code"},
		{"mid-inst jump", ".module a.out\n.executable\n.entry main\n.func main\n mov r2, @main+1\n b r2\n halt\n", "instruction boundary"},
	}
	for _, c := range cases {
		prog := build(t, c.src)
		v := New(prog, Config{})
		_, err := v.Run()
		if err == nil {
			t.Errorf("%s: Run succeeded, want trap", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.wantSub)
		}
		var trap *TrapError
		if !strings.Contains(err.Error(), "trap") {
			t.Errorf("%s: not a trap error: %T", c.name, trap)
		}
	}
}

func TestFuel(t *testing.T) {
	src := ".module a.out\n.executable\n.entry main\n.func main\nspin:\n b spin\n"
	prog := build(t, src)
	v := New(prog, Config{Fuel: 100})
	if _, err := v.Run(); err == nil || !strings.Contains(err.Error(), "fuel") {
		t.Errorf("err = %v, want fuel trap", err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern malloc
.func main
loop:
  mov r1, 0x1000000
  call malloc
  b loop
`
	prog := build(t, src)
	v := New(prog, Config{})
	if _, err := v.Run(); err == nil || !strings.Contains(err.Error(), "heap exhausted") {
		t.Errorf("err = %v, want heap trap", err)
	}
}

func TestBeforeAfterProbes(t *testing.T) {
	prog := build(t, sumSrc)
	f := prog.FuncByName("main")
	// Probe the first add (loop body).
	var addInst *isa.Inst
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Add && addInst == nil {
				addInst = in
			}
		}
	}
	v := New(prog, Config{})
	var before, after int
	if err := v.AddBefore(addInst.Addr, 5, func(c *Ctx) {
		before++
		if c.Inst() != addInst || c.When() != BeforeInst {
			t.Error("bad ctx in before probe")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := v.AddAfter(addInst.Addr, 5, func(c *Ctx) { after++ }); err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if before != 10 || after != 10 {
		t.Errorf("before=%d after=%d, want 10", before, after)
	}
	// Probe cost charged: 10*(5+5) = 100 extra units vs bare run.
	bare := New(prog, Config{})
	bres, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != bres.Cycles+100 {
		t.Errorf("cycles = %d, want %d", res.Cycles, bres.Cycles+100)
	}
}

func TestAfterCallSeesReturnValue(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern malloc
.func main
  mov r0, 0
  mov r1, 32
  call malloc
  halt
`
	prog := build(t, src)
	var callInst *isa.Inst
	for _, b := range prog.FuncByName("main").Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Call {
				callInst = in
			}
		}
	}
	v := New(prog, Config{})
	var sawBefore, sawAfter uint64
	sawBefore, sawAfter = 1, 1
	if err := v.AddBefore(callInst.Addr, 0, func(c *Ctx) {
		sawBefore = c.RetVal()
		if c.CallArg(1) != 32 {
			t.Errorf("CallArg(1) = %d, want 32", c.CallArg(1))
		}
		if got := c.TargetName(); got != "malloc" {
			t.Errorf("TargetName = %q, want malloc", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := v.AddAfter(callInst.Addr, 0, func(c *Ctx) {
		sawAfter = c.RetVal()
		if c.Inst() != callInst {
			t.Error("after-probe inst mismatch")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if sawBefore != 0 {
		t.Errorf("before-call retval = %#x, want 0", sawBefore)
	}
	if sawAfter != obj.HeapBase {
		t.Errorf("after-call retval = %#x, want heap base %#x", sawAfter, obj.HeapBase)
	}
}

func TestAfterRealCallFiresAfterReturn(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.func main
  call helper
  halt
.func helper
  mov r0, 77
  ret
`
	prog := build(t, src)
	var callInst *isa.Inst
	for _, b := range prog.FuncByName("main").Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Call {
				callInst = in
			}
		}
	}
	v := New(prog, Config{})
	var got uint64
	if err := v.AddAfter(callInst.Addr, 0, func(c *Ctx) { got = c.RetVal() }); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("after-call retval = %d, want 77", got)
	}
}

func TestBlockEntryAndEdgeProbes(t *testing.T) {
	prog := build(t, sumSrc)
	f := prog.FuncByName("main")
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	loop := f.Loops[0]
	v := New(prog, Config{})
	var headEntries, iters, entries, exits int
	if err := v.AddBlockEntry(loop.Header.Start, 0, func(c *Ctx) {
		headEntries++
		if c.Block() != loop.Header {
			t.Error("block ctx mismatch")
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, e := range loop.Backs {
		if err := v.AddEdge(e.From.Start, e.To.Start, 0, func(c *Ctx) { iters++ }); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range loop.Entries {
		if err := v.AddEdge(e.From.Start, e.To.Start, 0, func(c *Ctx) { entries++ }); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range loop.Exits {
		if err := v.AddEdge(e.From.Start, e.To.Start, 0, func(c *Ctx) { exits++ }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if headEntries != 10 {
		t.Errorf("header entries = %d, want 10", headEntries)
	}
	if iters != 9 {
		t.Errorf("back-edge traversals = %d, want 9", iters)
	}
	if entries != 1 || exits != 1 {
		t.Errorf("entries=%d exits=%d, want 1, 1", entries, exits)
	}
}

func TestTranslatorCalledOncePerBlock(t *testing.T) {
	prog := build(t, sumSrc)
	v := New(prog, Config{})
	counts := map[uint64]int{}
	if err := v.SetTranslator(func(b *cfg.Block) { counts[b.Start]++ }); err != nil {
		t.Fatal(err)
	}
	if err := v.SetTranslator(func(b *cfg.Block) {}); err == nil {
		t.Error("second SetTranslator succeeded")
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName("main")
	if len(counts) != len(f.Blocks) {
		t.Errorf("translated %d blocks, want %d", len(counts), len(f.Blocks))
	}
	for addr, n := range counts {
		if n != 1 {
			t.Errorf("block %#x translated %d times", addr, n)
		}
	}
}

func TestTranslatorCanInstrument(t *testing.T) {
	prog := build(t, sumSrc)
	v := New(prog, Config{})
	execBlocks := 0
	if err := v.SetTranslator(func(b *cfg.Block) {
		if err := v.AddBlockEntry(b.Start, 0, func(c *Ctx) { execBlocks++ }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	// Block executions: entry(1) + loop body(10) + exit(1) = 12.
	if execBlocks != 12 {
		t.Errorf("block executions = %d, want 12", execBlocks)
	}
}

func TestStartEndHooks(t *testing.T) {
	prog := build(t, sumSrc)
	v := New(prog, Config{})
	var events []When
	v.OnStart(func(c *Ctx) { events = append(events, c.When()) })
	v.OnEnd(func(c *Ctx) { events = append(events, c.When()) })
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != AtStart || events[1] != AtEnd {
		t.Errorf("events = %v", events)
	}
}

func TestProbeRegistrationErrors(t *testing.T) {
	prog := build(t, sumSrc)
	f := prog.FuncByName("main")
	var branch *isa.Inst
	for _, b := range f.Blocks {
		if b.Last().Op == isa.Branch {
			branch = b.Last()
		}
	}
	v := New(prog, Config{})
	if err := v.AddBefore(0x3, 0, func(*Ctx) {}); err == nil {
		t.Error("AddBefore on bad addr succeeded")
	}
	if err := v.AddAfter(branch.Addr, 0, func(*Ctx) {}); err == nil {
		t.Error("AddAfter on branch succeeded")
	}
	if err := v.AddBlockEntry(branch.Addr, 0, func(*Ctx) {}); err == nil {
		t.Error("AddBlockEntry mid-block succeeded")
	}
	if err := v.AddEdge(0x3, f.Blocks[0].Start, 0, func(*Ctx) {}); err == nil {
		t.Error("AddEdge bad from succeeded")
	}
	if err := v.AddEdge(f.Blocks[0].Start, 0x3, 0, func(*Ctx) {}); err == nil {
		t.Error("AddEdge bad to succeeded")
	}
}

func TestReturnAddressOnStackIsObservable(t *testing.T) {
	// The shadow-stack case study depends on (a) the return address
	// living in real memory, (b) a ret's target being readable before it
	// executes, and (c) an overwritten return address actually diverting
	// control.
	src := `
.module a.out
.executable
.entry main
.extern print
.func main
  call victim
  halt
.func victim
  ; smash the saved return address: point it at evil
  mov   r9, @evil
  store r9, [sp]
  ret
.func evil
  mov r1, 666
  call print
  halt
`
	prog := build(t, src)
	var retInst *isa.Inst
	for _, b := range prog.FuncByName("victim").Blocks {
		if b.Last().Op == isa.Return {
			retInst = b.Last()
		}
	}
	evil := prog.FuncByName("evil")
	v := New(prog, Config{})
	var out bytes.Buffer
	v.appOut = &out
	var observed uint64
	if err := v.AddBefore(retInst.Addr, 0, func(c *Ctx) {
		observed, _ = c.Target()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != evil.Entry {
		t.Errorf("observed ret target %#x, want evil %#x", observed, evil.Entry)
	}
	if out.String() != "666\n" {
		t.Errorf("attack did not run: out=%q", out.String())
	}
}

func TestRunTwiceFails(t *testing.T) {
	prog := build(t, sumSrc)
	v := New(prog, Config{})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	// Cross-page access.
	addr := uint64(pageSize - 3)
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
	m.Write8(5, 0xab)
	if m.Read8(5) != 0xab {
		t.Error("byte round trip failed")
	}
	b := []byte{1, 2, 3, 4, 5}
	m.WriteBytes(0x100, b)
	if got := m.ReadBytes(0x100, 5); !bytes.Equal(got, b) {
		t.Errorf("bytes round trip = %v", got)
	}
	if m.Read64(0x9999_0000) != 0 {
		t.Error("untouched memory not zero")
	}
}

// TestQuickALUMatchesGo generates random straight-line ALU programs,
// executes them on the VM, and checks every register against a direct Go
// evaluation of the same operations.
func TestQuickALUMatchesGo(t *testing.T) {
	type op struct {
		mnem   string
		rd, rs int
		imm    int64
		useImm bool
		rt     int
	}
	eval := func(regs *[8]uint64, o op) {
		a := regs[o.rs]
		b := regs[o.rt]
		if o.useImm {
			b = uint64(o.imm)
		}
		var r uint64
		switch o.mnem {
		case "add":
			r = a + b
		case "sub":
			r = a - b
		case "mul":
			r = a * b
		case "and":
			r = a & b
		case "or":
			r = a | b
		case "xor":
			r = a ^ b
		case "shl":
			r = a << (b & 63)
		case "shr":
			r = a >> (b & 63)
		}
		regs[o.rd] = r
	}
	mnems := []string{"add", "sub", "mul", "and", "or", "xor", "shl", "shr"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var ref [8]uint64
		src := ".module q\n.executable\n.entry main\n.func main\n"
		// Seed registers r8..r15 with known values.
		for i := 0; i < 8; i++ {
			v := r.Int63()
			ref[i] = uint64(v)
			src += fmt.Sprintf("  mov r%d, %d\n", 8+i, v)
		}
		for k := 0; k < 20; k++ {
			o := op{
				mnem: mnems[r.Intn(len(mnems))],
				rd:   r.Intn(8), rs: r.Intn(8), rt: r.Intn(8),
				imm: int64(r.Intn(1000)), useImm: r.Intn(2) == 0,
			}
			if o.useImm {
				src += fmt.Sprintf("  %s r%d, r%d, %d\n", o.mnem, 8+o.rd, 8+o.rs, o.imm)
			} else {
				src += fmt.Sprintf("  %s r%d, r%d, r%d\n", o.mnem, 8+o.rd, 8+o.rs, 8+o.rt)
			}
			eval(&ref, o)
		}
		src += "  halt\n"
		m, err := asm.Assemble(src)
		if err != nil {
			t.Log(err)
			return false
		}
		p, err := obj.Load([]*obj.Module{m}, RuntimeExterns())
		if err != nil {
			t.Log(err)
			return false
		}
		prog, err := cfg.Build(p)
		if err != nil {
			t.Log(err)
			return false
		}
		v := New(prog, Config{})
		if _, err := v.Run(); err != nil {
			t.Log(err)
			return false
		}
		for i := 0; i < 8; i++ {
			if v.Reg(isa.Reg(8+i)) != ref[i] {
				t.Logf("seed %d: r%d = %#x, want %#x", seed, 8+i, v.Reg(isa.Reg(8+i)), ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
