package isa

import (
	"encoding/binary"
	"fmt"
)

// Instruction encoding
//
// Instructions are variable length:
//
//	byte 0      opcode
//	byte 1      cond<<4 | numOperands
//	operands    1 kind byte followed by a kind-specific payload:
//	              reg:  1 byte register number
//	              imm:  8 bytes little-endian two's-complement value
//	              mem:  1 byte base register + 8 bytes little-endian offset
//
// Immediates are always full 8-byte words so that the loader can patch
// relocated control-transfer targets in place without re-encoding.

// MaxInstSize is the largest possible encoded instruction size in bytes.
const MaxInstSize = 2 + 4*(1+9)

const headerSize = 2

// EncodedSize returns the encoded size of the instruction in bytes.
func EncodedSize(i *Inst) uint32 {
	n := uint32(headerSize)
	for _, op := range i.Ops {
		switch op.Kind {
		case KindReg:
			n += 2
		case KindImm:
			n += 9
		case KindMem:
			n += 10
		}
	}
	return n
}

// ImmOffset returns the byte offset, within the encoded instruction, of the
// 8-byte immediate payload of operand n. It is used by the assembler to
// record relocation sites for direct control-transfer targets. It returns an
// error if operand n is not an immediate or memory-offset operand.
func ImmOffset(i *Inst, n int) (uint32, error) {
	if n < 0 || n >= len(i.Ops) {
		return 0, fmt.Errorf("isa: operand %d out of range", n)
	}
	off := uint32(headerSize)
	for k := 0; k < n; k++ {
		switch i.Ops[k].Kind {
		case KindReg:
			off += 2
		case KindImm:
			off += 9
		case KindMem:
			off += 10
		}
	}
	switch i.Ops[n].Kind {
	case KindImm:
		return off + 1, nil // skip kind byte
	case KindMem:
		return off + 2, nil // skip kind and base bytes
	}
	return 0, fmt.Errorf("isa: operand %d of %s has no immediate payload", n, i.Op)
}

// Encode appends the encoded form of the instruction to dst and returns the
// extended slice. The instruction is validated first.
func Encode(dst []byte, i *Inst) ([]byte, error) {
	if err := i.Validate(); err != nil {
		return dst, err
	}
	if len(i.Ops) > 4 {
		return dst, fmt.Errorf("isa: too many operands (%d)", len(i.Ops))
	}
	dst = append(dst, byte(i.Op), byte(i.Cond)<<4|byte(len(i.Ops)))
	var buf [8]byte
	for _, op := range i.Ops {
		dst = append(dst, byte(op.Kind))
		switch op.Kind {
		case KindReg:
			dst = append(dst, byte(op.Reg))
		case KindImm:
			binary.LittleEndian.PutUint64(buf[:], uint64(op.Imm))
			dst = append(dst, buf[:]...)
		case KindMem:
			dst = append(dst, byte(op.Base))
			binary.LittleEndian.PutUint64(buf[:], uint64(op.Off))
			dst = append(dst, buf[:]...)
		}
	}
	return dst, nil
}

// Decode decodes one instruction from code, which must start at the
// instruction boundary. addr is the absolute address of the instruction
// (stored in the result). Decode returns the instruction and the number of
// bytes consumed.
func Decode(code []byte, addr uint64) (*Inst, uint32, error) {
	if len(code) < headerSize {
		return nil, 0, fmt.Errorf("isa: truncated instruction at %#x", addr)
	}
	op := Op(code[0])
	if !op.Valid() {
		return nil, 0, fmt.Errorf("isa: invalid opcode %#x at %#x", code[0], addr)
	}
	cond := Cond(code[1] >> 4)
	nops := int(code[1] & 0xf)
	if !cond.Valid() {
		return nil, 0, fmt.Errorf("isa: invalid condition %#x at %#x", code[1]>>4, addr)
	}
	if nops > 4 {
		return nil, 0, fmt.Errorf("isa: invalid operand count %d at %#x", nops, addr)
	}
	inst := &Inst{Addr: addr, Op: op, Cond: cond}
	if nops > 0 {
		inst.Ops = make([]Operand, 0, nops)
	}
	pos := headerSize
	for n := 0; n < nops; n++ {
		if pos >= len(code) {
			return nil, 0, fmt.Errorf("isa: truncated operand %d at %#x", n, addr)
		}
		kind := OperandKind(code[pos])
		pos++
		var o Operand
		switch kind {
		case KindReg:
			if pos+1 > len(code) {
				return nil, 0, fmt.Errorf("isa: truncated register operand at %#x", addr)
			}
			o = RegOp(Reg(code[pos]))
			pos++
		case KindImm:
			if pos+8 > len(code) {
				return nil, 0, fmt.Errorf("isa: truncated immediate operand at %#x", addr)
			}
			o = ImmOp(int64(binary.LittleEndian.Uint64(code[pos:])))
			pos += 8
		case KindMem:
			if pos+9 > len(code) {
				return nil, 0, fmt.Errorf("isa: truncated memory operand at %#x", addr)
			}
			o = MemOp(Reg(code[pos]), int64(binary.LittleEndian.Uint64(code[pos+1:])))
			pos += 9
		default:
			return nil, 0, fmt.Errorf("isa: invalid operand kind %#x at %#x", code[pos-1], addr)
		}
		inst.Ops = append(inst.Ops, o)
	}
	inst.Size = uint32(pos)
	if err := inst.Validate(); err != nil {
		return nil, 0, fmt.Errorf("isa: decode at %#x: %w", addr, err)
	}
	return inst, inst.Size, nil
}

// DecodeAll decodes a full code image starting at base, returning the
// instructions in address order. It fails on the first malformed
// instruction.
func DecodeAll(code []byte, base uint64) ([]*Inst, error) {
	var insts []*Inst
	for pos := uint64(0); pos < uint64(len(code)); {
		inst, n, err := Decode(code[pos:], base+pos)
		if err != nil {
			return nil, err
		}
		insts = append(insts, inst)
		pos += uint64(n)
	}
	return insts, nil
}
